//! Event sinks.
//!
//! Producers take `&mut dyn EventSink` and hoist one
//! [`EventSink::enabled`] check out of their hot loops; with the
//! default [`NullSink`] that check is a constant `false` and the
//! instrumented path compiles down to the uninstrumented one.

use std::io::{self, Write};

use crate::event::{Event, EventKind};
use crate::metrics::MetricsRegistry;

/// Receives the event stream of a run.
pub trait EventSink {
    /// Whether this sink wants events at all. Producers check once per
    /// run (not per event) and skip event construction entirely when
    /// this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event. Only called when [`EventSink::enabled`].
    fn emit(&mut self, event: &Event);

    /// Flush buffered output and surface any deferred I/O error.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _event: &Event) {}
}

/// Buffers every event in memory; the backing store for traces and
/// golden tests.
///
/// Ordering caveat: a sink records *emission* order. The simulator
/// emits in global causal order, but the cluster runtime buffers
/// events per worker and merges by logical time with
/// [`EventKind::order_class`](crate::EventKind::order_class) as the
/// equal-time tiebreak — two causally ordered events stamped in the
/// same microsecond on *different* workers have no further ordering
/// guarantee. Consumers checking cross-rank invariants must therefore
/// sort by `(time, order_class, index)` first, as
/// [`MonitorSink`](crate::MonitorSink) does, rather than trust raw
/// buffer order.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// The recorded events, in emission order.
    pub events: Vec<Event>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Render the recorded stream as JSONL (one event per line,
    /// trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

impl EventSink for VecSink {
    fn emit(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Streams events as JSONL to any writer (typically a buffered file).
///
/// I/O errors are deferred: `emit` never fails mid-run; the first error
/// is stored and returned by [`EventSink::flush`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    deferred: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer,
            deferred: None,
        }
    }

    /// Unwrap, surfacing any deferred error.
    pub fn into_inner(mut self) -> io::Result<W> {
        match self.deferred.take() {
            Some(e) => Err(e),
            None => Ok(self.writer),
        }
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        if self.deferred.is_some() {
            return;
        }
        let line = event.to_json();
        if let Err(e) = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
        {
            self.deferred = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.deferred.take() {
            Some(e) => Err(e),
            None => self.writer.flush(),
        }
    }
}

/// Feeds the event stream into a [`MetricsRegistry`] (message counters
/// by payload kind, drop counter, coloring-time histogram).
#[derive(Clone, Debug, Default)]
pub struct MetricsSink {
    /// The accumulated metrics.
    pub registry: MetricsRegistry,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }
}

impl EventSink for MetricsSink {
    fn emit(&mut self, event: &Event) {
        self.registry.record_event(event);
    }
}

/// Fan one stream out to two sinks (either side may be a further tee).
///
/// Both sides see the same emission order; the [`VecSink`] ordering
/// caveat about cluster per-worker buffering applies to each side
/// unchanged.
#[derive(Debug, Default)]
pub struct TeeSink<A, B> {
    /// First receiver.
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A: EventSink, B: EventSink> TeeSink<A, B> {
    /// Combine two sinks.
    pub fn new(a: A, b: B) -> TeeSink<A, B> {
        TeeSink { a, b }
    }
}

impl<A: EventSink, B: EventSink> EventSink for TeeSink<A, B> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn emit(&mut self, event: &Event) {
        if self.a.enabled() {
            self.a.emit(event);
        }
        if self.b.enabled() {
            self.b.emit(event);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.a.flush()?;
        self.b.flush()
    }
}

impl EventSink for &mut dyn EventSink {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn emit(&mut self, event: &Event) {
        (**self).emit(event);
    }

    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }
}

/// Silently ignore phase spans, forwarding everything else — useful
/// when comparing a producer that emits spans against one that doesn't.
#[derive(Debug, Default)]
pub struct DropPhases<S> {
    /// The receiving sink.
    pub inner: S,
}

impl<S: EventSink> DropPhases<S> {
    /// Wrap a sink.
    pub fn new(inner: S) -> DropPhases<S> {
        DropPhases { inner }
    }
}

impl<S: EventSink> EventSink for DropPhases<S> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn emit(&mut self, event: &Event) {
        if !matches!(
            event.kind,
            EventKind::PhaseBegin { .. } | EventKind::PhaseEnd { .. }
        ) {
            self.inner.emit(event);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::protocol::Payload;
    use ct_logp::Time;

    fn send(t: u64) -> Event {
        Event::sim(
            Time::new(t),
            EventKind::SendStart {
                from: 0,
                to: 1,
                payload: Payload::Tree,
            },
        )
    }

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
    }

    #[test]
    fn vec_sink_records_and_renders_jsonl() {
        let mut s = VecSink::new();
        s.emit(&send(0));
        s.emit(&send(1));
        assert_eq!(s.events.len(), 2);
        let jsonl = s.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        let mut s = JsonlSink::new(Vec::new());
        s.emit(&send(3));
        s.flush().unwrap();
        let bytes = s.into_inner().unwrap();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            "{\"t\":3,\"kind\":\"send\",\"from\":0,\"to\":1,\"payload\":\"tree\"}\n"
        );
    }

    #[test]
    fn tee_feeds_both_sides() {
        let mut tee = TeeSink::new(VecSink::new(), MetricsSink::new());
        assert!(tee.enabled());
        tee.emit(&send(0));
        assert_eq!(tee.a.events.len(), 1);
        assert_eq!(tee.b.registry.counter("msgs.tree"), 1);
    }

    #[test]
    fn drop_phases_filters_spans_only() {
        let mut s = DropPhases::new(VecSink::new());
        s.emit(&send(0));
        s.emit(&Event::sim(
            Time::ZERO,
            EventKind::PhaseBegin { name: "x".into() },
        ));
        s.emit(&Event::sim(
            Time::ZERO,
            EventKind::PhaseEnd { name: "x".into() },
        ));
        assert_eq!(s.inner.events.len(), 1);
    }
}
