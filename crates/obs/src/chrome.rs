//! Export a recorded event stream as `chrome://tracing` JSON.
//!
//! The output loads in Chrome's tracing UI and in Perfetto: one track
//! (`tid`) per rank, sends and deliveries as `o`-long complete events,
//! arrivals/drops/colorings as instants, phase spans as begin/end pairs
//! on a dedicated track. Each send is additionally linked to its
//! arrival (or drop) with a flow-event pair (`ph:"s"` → `ph:"f"`), so
//! message causality renders as arrows in Perfetto. Timestamps use the
//! wall clock when the stream has one (cluster runs) and logical steps
//! otherwise, both mapped to the format's microsecond unit.

use std::collections::{BTreeMap, VecDeque};

use crate::event::{Event, EventKind};
use crate::json::JsonObject;

/// Track id used for phase spans (ranks use their own number).
const PHASE_TID: u64 = u64::MAX >> 1;

fn ts(e: &Event) -> u64 {
    e.wall_us.unwrap_or_else(|| e.time.steps())
}

fn trace_event(e: &Event, o: u64) -> Option<String> {
    let mut obj = JsonObject::new();
    match &e.kind {
        EventKind::SendStart { from, to, payload } => {
            obj.field_str(
                "name",
                &format!("send {} → {to}", Event::payload_tag(*payload)),
            );
            obj.field_str("ph", "X");
            obj.field_u64("ts", ts(e));
            obj.field_u64("dur", o.max(1));
            obj.field_u64("pid", 0);
            obj.field_u64("tid", u64::from(*from));
        }
        EventKind::Deliver { from, to, payload } => {
            obj.field_str(
                "name",
                &format!("recv {} ← {from}", Event::payload_tag(*payload)),
            );
            obj.field_str("ph", "X");
            // Delivery marks the end of the o-long processing window.
            obj.field_u64("ts", ts(e).saturating_sub(o));
            obj.field_u64("dur", o.max(1));
            obj.field_u64("pid", 0);
            obj.field_u64("tid", u64::from(*to));
        }
        EventKind::Arrive { from, to, payload } => {
            obj.field_str(
                "name",
                &format!("arrive {} ← {from}", Event::payload_tag(*payload)),
            );
            obj.field_str("ph", "i");
            obj.field_str("s", "t");
            obj.field_u64("ts", ts(e));
            obj.field_u64("pid", 0);
            obj.field_u64("tid", u64::from(*to));
        }
        EventKind::DropDead { from, to, payload } => {
            obj.field_str(
                "name",
                &format!("drop {} ← {from}", Event::payload_tag(*payload)),
            );
            obj.field_str("ph", "i");
            obj.field_str("s", "t");
            obj.field_u64("ts", ts(e));
            obj.field_u64("pid", 0);
            obj.field_u64("tid", u64::from(*to));
        }
        EventKind::Colored { rank, via } => {
            obj.field_str("name", &format!("colored ({via:?})"));
            obj.field_str("ph", "i");
            obj.field_str("s", "t");
            obj.field_u64("ts", ts(e));
            obj.field_u64("pid", 0);
            obj.field_u64("tid", u64::from(*rank));
        }
        EventKind::PhaseBegin { name } => {
            obj.field_str("name", name);
            obj.field_str("ph", "B");
            obj.field_u64("ts", ts(e));
            obj.field_u64("pid", 0);
            obj.field_u64("tid", PHASE_TID);
        }
        EventKind::PhaseEnd { name } => {
            obj.field_str("name", name);
            obj.field_str("ph", "E");
            obj.field_u64("ts", ts(e));
            obj.field_u64("pid", 0);
            obj.field_u64("tid", PHASE_TID);
        }
    }
    Some(obj.finish())
}

/// One half of a flow-event pair: `ph:"s"` at the send, `ph:"f"` at the
/// matching arrive/drop. Perfetto pairs the halves by `(cat, name, id)`
/// and draws an arrow between the enclosing slices.
fn flow_event(payload_name: &str, ph: &str, id: u64, ts: u64, tid: u64) -> String {
    let mut obj = JsonObject::new();
    obj.field_str("name", payload_name);
    obj.field_str("cat", "msg");
    obj.field_str("ph", ph);
    if ph == "f" {
        // Bind the finish to the enclosing slice, not the next one.
        obj.field_str("bp", "e");
    }
    obj.field_u64("id", id);
    obj.field_u64("ts", ts);
    obj.field_u64("pid", 0);
    obj.field_u64("tid", tid);
    obj.finish()
}

/// Render an event stream as a `chrome://tracing` JSON document.
///
/// `o` is the LogP overhead (the duration of send/receive slots); for
/// wall-clocked cluster streams pass the measured per-message overhead
/// in microseconds, or `1` for minimal-width slots.
pub fn chrome_trace(events: &[Event], o: u64) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |json: &str, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(json);
    };
    // Sends matched to arrivals/drops FIFO per (from, to, payload): the
    // simulator delivers each link in order, so the oldest outstanding
    // send on a link is the one arriving.
    let mut next_flow_id: u64 = 1;
    let mut in_flight: BTreeMap<(u32, u32, &'static str), VecDeque<u64>> = BTreeMap::new();
    for e in events {
        if let Some(json) = trace_event(e, o) {
            push(&json, &mut first);
        }
        match &e.kind {
            EventKind::SendStart { from, to, payload } => {
                let tag = Event::payload_tag(*payload);
                let id = next_flow_id;
                next_flow_id += 1;
                in_flight
                    .entry((*from, *to, tag))
                    .or_default()
                    .push_back(id);
                let json = flow_event(&format!("msg {tag}"), "s", id, ts(e), u64::from(*from));
                push(&json, &mut first);
            }
            EventKind::Arrive { from, to, payload } | EventKind::DropDead { from, to, payload } => {
                let tag = Event::payload_tag(*payload);
                if let Some(id) = in_flight
                    .get_mut(&(*from, *to, tag))
                    .and_then(VecDeque::pop_front)
                {
                    let json = flow_event(&format!("msg {tag}"), "f", id, ts(e), u64::from(*to));
                    push(&json, &mut first);
                }
            }
            _ => {}
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::protocol::{ColoredVia, Payload};
    use ct_logp::Time;

    #[test]
    fn send_and_deliver_become_complete_events() {
        let events = vec![
            Event::sim(
                Time::ZERO,
                EventKind::SendStart {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            Event::sim(
                Time::new(4),
                EventKind::Deliver {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
        ];
        let json = chrome_trace(&events, 1);
        assert!(json.contains(r#""name":"send tree → 1""#), "{json}");
        assert!(json.contains(r#""ph":"X""#), "{json}");
        assert!(json.contains(r#""name":"recv tree ← 0""#), "{json}");
        // Delivery at t=4 with o=1 renders as a slot starting at 3.
        assert!(json.contains(r#""ts":3"#), "{json}");
    }

    #[test]
    fn phases_pair_begin_and_end() {
        let events = vec![
            Event::sim(
                Time::ZERO,
                EventKind::PhaseBegin {
                    name: "broadcast".into(),
                },
            ),
            Event::sim(
                Time::new(9),
                EventKind::PhaseEnd {
                    name: "broadcast".into(),
                },
            ),
        ];
        let json = chrome_trace(&events, 1);
        assert!(json.contains(r#""ph":"B""#), "{json}");
        assert!(json.contains(r#""ph":"E""#), "{json}");
    }

    #[test]
    fn wall_clock_wins_over_logical_time() {
        let events = vec![Event::wall(
            Time::new(5),
            777,
            EventKind::Colored {
                rank: 2,
                via: ColoredVia::Dissemination,
            },
        )];
        let json = chrome_trace(&events, 1);
        assert!(json.contains(r#""ts":777"#), "{json}");
    }

    #[test]
    fn sends_link_to_arrivals_with_flow_pairs() {
        let events = vec![
            Event::sim(
                Time::ZERO,
                EventKind::SendStart {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            Event::sim(
                Time::new(1),
                EventKind::SendStart {
                    from: 0,
                    to: 2,
                    payload: Payload::Tree,
                },
            ),
            Event::sim(
                Time::new(3),
                EventKind::Arrive {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            Event::sim(
                Time::new(4),
                EventKind::DropDead {
                    from: 0,
                    to: 2,
                    payload: Payload::Tree,
                },
            ),
        ];
        let json = chrome_trace(&events, 1);
        // Two starts, two finishes, ids pair up FIFO per link.
        assert!(
            json.contains(r#""ph":"s","id":1,"ts":0,"pid":0,"tid":0"#),
            "{json}"
        );
        assert!(
            json.contains(r#""ph":"s","id":2,"ts":1,"pid":0,"tid":0"#),
            "{json}"
        );
        assert!(
            json.contains(r#""ph":"f","bp":"e","id":1,"ts":3,"pid":0,"tid":1"#),
            "{json}"
        );
        assert!(
            json.contains(r#""ph":"f","bp":"e","id":2,"ts":4,"pid":0,"tid":2"#),
            "{json}"
        );
    }

    #[test]
    fn unmatched_arrival_emits_no_flow_finish() {
        let events = vec![Event::sim(
            Time::new(3),
            EventKind::Arrive {
                from: 0,
                to: 1,
                payload: Payload::Tree,
            },
        )];
        let json = chrome_trace(&events, 1);
        assert!(!json.contains(r#""ph":"f""#), "{json}");
    }

    #[test]
    fn document_is_wellformed_bracketwise() {
        let json = chrome_trace(&[], 1);
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with("]}"));
    }
}
