//! A tiny hand-rolled JSON writer.
//!
//! The workspace is built fully offline (no serde), and everything this
//! crate serializes is flat and append-only, so a push-style object
//! builder with explicit field order is all that is needed. Output is
//! deterministic: fields appear exactly in insertion order, floats are
//! rendered through [`fmt_f64`] with a fixed shortest-roundtrip-free
//! format, and strings are escaped per RFC 8259.

use core::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a finite `f64` deterministically (JSON has no NaN/∞; those
/// are rendered as `null`). Integral values keep one decimal place so
/// the type is unambiguous to readers.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Push-style builder for one flat JSON object.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Start an object (`{`).
    pub fn new() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_escaped(&mut self.buf, name);
        self.buf.push(':');
    }

    /// Add an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, v: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field (finite values only; non-finite become `null`).
    pub fn field_f64(&mut self, name: &str, v: f64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&fmt_f64(v));
        self
    }

    /// Add a string field.
    pub fn field_str(&mut self, name: &str, v: &str) -> &mut Self {
        self.key(name);
        write_escaped(&mut self.buf, v);
        self
    }

    /// Add a boolean field.
    pub fn field_bool(&mut self, name: &str, v: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a `null` field.
    pub fn field_null(&mut self, name: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str("null");
        self
    }

    /// Add a pre-rendered JSON value verbatim (array or nested object).
    pub fn field_raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Add an array of unsigned integers.
    pub fn field_u64_array(&mut self, name: &str, vs: &[u64]) -> &mut Self {
        self.key(name);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Close the object (`}`) and return the rendered string.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn object_fields_keep_insertion_order() {
        let mut o = JsonObject::new();
        o.field_u64("b", 2);
        o.field_str("a", "x");
        o.field_bool("ok", true);
        o.field_null("gone");
        o.field_u64_array("xs", &[1, 2, 3]);
        assert_eq!(
            o.finish(),
            r#"{"b":2,"a":"x","ok":true,"gone":null,"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn floats_are_deterministic() {
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
