//! Minimal hand-rolled HTTP/1.1 server for live-run monitoring.
//!
//! Offline and dependency-free, in the same spirit as the hand-rolled
//! JSON writer: just enough of HTTP/1.1 for a Prometheus scraper or
//! `curl` — `GET`, a status line, `Content-Type`/`Content-Length`,
//! `Connection: close`. Requests are served serially from one
//! background thread with a non-blocking accept loop, so dropping the
//! [`HttpServer`] stops it promptly.
//!
//! [`monitor_handler`] wires the three monitoring routes `ct serve` and
//! `ct top --listen` expose: `/metrics` (the existing Prometheus
//! exposition), `/series.jsonl` (the sampler's ring) and `/health`
//! (JSON; 503 while a critical health event is active, so a probe can
//! alert without parsing anything).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::json::JsonObject;
use crate::series::SeriesStore;
use crate::telemetry::TelemetryHub;

/// Largest request head (request line + headers) we accept.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long one client may take to deliver its request or drain the
/// response before the connection is dropped.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// One response: status, media type and body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` with the given media type.
    pub fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// A plain-text `404 Not Found`.
    pub fn not_found() -> Response {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".to_owned(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())
    }
}

/// A background HTTP server; see the module docs. Dropping it stops
/// the accept loop and joins the thread.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free one)
    /// and serve `handler(path)` for every `GET`.
    pub fn spawn<F>(addr: &str, handler: F) -> std::io::Result<HttpServer>
    where
        F: Fn(&str) -> Response + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("ct-http".to_owned())
            .spawn(move || {
                while !thread_stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            let _ = serve_one(&mut stream, &handler);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?;
        Ok(HttpServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the accept loop to stop and join it (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Read one request head, dispatch, write one response.
fn serve_one<F>(stream: &mut TcpStream, handler: &F) -> std::io::Result<()>
where
    F: Fn(&str) -> Response,
{
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&buf);
    let response = match parse_request_line(head.lines().next().unwrap_or("")) {
        Some(("GET", path)) => handler(path),
        Some((_, _)) => Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "only GET is supported\n".to_owned(),
        },
        None => Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "malformed request line\n".to_owned(),
        },
    };
    response.write_to(stream)
}

/// `"GET /metrics HTTP/1.1"` → `("GET", "/metrics")`. Any query string
/// is stripped; the HTTP version is not inspected.
fn parse_request_line(line: &str) -> Option<(&str, &str)> {
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    parts.next()?; // version must at least be present
    let path = target.split('?').next().unwrap_or(target);
    if !path.starts_with('/') {
        return None;
    }
    Some((method, path))
}

/// The `/health` body: overall status plus the currently active
/// events.
fn health_json(active: &[crate::health::HealthEvent], critical: usize) -> String {
    let mut obj = JsonObject::new();
    obj.field_str("schema", crate::series::SCHEMA);
    obj.field_str(
        "status",
        if critical > 0 {
            "critical"
        } else if active.is_empty() {
            "ok"
        } else {
            "degraded"
        },
    );
    let mut arr = String::from("[");
    for (i, e) in active.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(&e.to_json());
    }
    arr.push(']');
    obj.field_raw("active", &arr);
    obj.finish() + "\n"
}

/// The monitoring route table: `/metrics`, `/series.jsonl` and
/// `/health` over a live hub and (when sampling is enabled) its series
/// store. Pass the result to [`HttpServer::spawn`].
pub fn monitor_handler(
    hub: Arc<TelemetryHub>,
    source: &str,
    store: Option<Arc<SeriesStore>>,
) -> impl Fn(&str) -> Response + Send + 'static {
    let source = source.to_owned();
    move |path| match path {
        "/metrics" => Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            hub.snapshot().with_source(&source).render_prometheus(),
        ),
        "/series.jsonl" => match &store {
            Some(s) => Response::ok("application/x-ndjson", s.export_jsonl()),
            None => Response::not_found(),
        },
        "/health" => {
            let (active, critical) = match &store {
                Some(s) => {
                    let active = s.active();
                    let critical = s.active_critical().len();
                    (active, critical)
                }
                None => (Vec::new(), 0),
            };
            let body = health_json(&active, critical);
            Response {
                status: if critical > 0 { 503 } else { 200 },
                content_type: "application/json",
                body,
            }
        }
        _ => Response::not_found(),
    }
}

/// Tiny blocking client for `ct monitor --connect` and the tests:
/// `GET path` against `addr`, returning `(status, body)`.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable addr")
    })?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let status = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{HealthEvent, Severity};
    use crate::series::SeriesStore;
    use crate::telemetry::Counter;

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line("GET /series.jsonl?tail=10 HTTP/1.1"),
            Some(("GET", "/series.jsonl"))
        );
        assert_eq!(
            parse_request_line("POST /metrics HTTP/1.1"),
            Some(("POST", "/metrics"))
        );
        assert_eq!(parse_request_line("GET metrics HTTP/1.1"), None);
        assert_eq!(parse_request_line("GET /metrics"), None);
        assert_eq!(parse_request_line(""), None);
    }

    #[test]
    fn server_round_trips_the_monitor_routes() {
        let hub = Arc::new(TelemetryHub::new(1, 4));
        hub.add(0, Counter::SchedQuanta, 5);
        let store = Arc::new(SeriesStore::new(8));
        let mut server = HttpServer::spawn(
            "127.0.0.1:0",
            monitor_handler(Arc::clone(&hub), "cluster", Some(Arc::clone(&store))),
        )
        .expect("bind");
        let addr = server.addr().to_string();
        let timeout = Duration::from_secs(5);

        let (status, body) = http_get(&addr, "/metrics", timeout).expect("GET /metrics");
        assert_eq!(status, 200);
        assert!(
            body.contains("ct_sched_quanta{source=\"cluster\"} 5"),
            "{body}"
        );

        let (status, body) = http_get(&addr, "/health", timeout).expect("GET /health");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        let (status, body) = http_get(&addr, "/series.jsonl", timeout).expect("GET series");
        assert_eq!(status, 200);
        assert!(body.is_empty(), "no windows recorded yet: {body}");

        let (status, _) = http_get(&addr, "/nope", timeout).expect("GET unknown");
        assert_eq!(status, 404);

        server.stop();
    }

    #[test]
    fn health_route_is_503_while_a_critical_event_is_active() {
        let hub = Arc::new(TelemetryHub::new(1, 4));
        let store = Arc::new(SeriesStore::new(8));
        let e = HealthEvent {
            rule: "stall_precursor".to_owned(),
            severity: Severity::Critical,
            seq: 3,
            t_ms: 300,
            values: vec![],
            message: "wedged".to_owned(),
        };
        store.record_events(vec![e.clone()], vec![e]);
        let mut server = HttpServer::spawn(
            "127.0.0.1:0",
            monitor_handler(hub, "cluster", Some(Arc::clone(&store))),
        )
        .expect("bind");
        let addr = server.addr().to_string();
        let (status, body) =
            http_get(&addr, "/health", Duration::from_secs(5)).expect("GET /health");
        assert_eq!(status, 503);
        assert!(body.contains("\"status\":\"critical\""), "{body}");
        assert!(body.contains("stall_precursor"), "{body}");
        // Condition clears: back to 200.
        store.record_events(vec![], vec![]);
        let (status, body) =
            http_get(&addr, "/health", Duration::from_secs(5)).expect("GET /health");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        server.stop();
    }
}
