//! A lightweight metrics registry: named counters and fixed-bucket
//! histograms, mergeable across runs. No external dependencies, no
//! interior mutability — producers own a registry (or a
//! [`crate::MetricsSink`]) and merge at join points.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::json::JsonObject;

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `v ≤ bounds[i]` (and `> bounds[i-1]`);
/// one implicit overflow bucket catches everything above the last
/// bound. Exact `count`, `sum`, `min` and `max` are kept alongside.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given strictly increasing upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The default latency buckets: powers of two from 1 to 2²⁰ —
    /// covers both LogP steps (tens to thousands) and microseconds
    /// (up to ~1 s) with relative resolution ≤ 2×.
    pub fn latency_default() -> Histogram {
        let bounds: Vec<u64> = (0..=20).map(|i| 1u64 << i).collect();
        Histogram::with_bounds(&bounds)
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        let idx = self.bucket_index(v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// The bucket index `v` falls into (`bounds.len()` = overflow).
    pub fn bucket_index(&self, v: u64) -> usize {
        self.bounds.partition_point(|&b| b < v)
    }

    /// The configured upper bounds (overflow bucket excluded).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merge another histogram with identical bounds into this one.
    ///
    /// # Panics
    /// If the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different buckets"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64_array("bounds", &self.bounds);
        obj.field_u64_array("counts", &self.counts);
        obj.field_u64("count", self.count);
        obj.field_u64("sum", self.sum);
        match (self.min(), self.max()) {
            (Some(min), Some(max)) => {
                obj.field_u64("min", min);
                obj.field_u64("max", max);
            }
            _ => {
                obj.field_null("min");
                obj.field_null("max");
            }
        }
        obj.finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::latency_default()
    }
}

/// Counter and histogram names used by [`MetricsRegistry::record_event`].
pub mod names {
    /// Tree dissemination sends.
    pub const MSGS_TREE: &str = "msgs.tree";
    /// Gossip dissemination sends.
    pub const MSGS_GOSSIP: &str = "msgs.gossip";
    /// Ring-correction sends.
    pub const MSGS_CORRECTION: &str = "msgs.correction";
    /// Acknowledgment sends.
    pub const MSGS_ACK: &str = "msgs.ack";
    /// Messages dropped at dead receivers.
    pub const MSGS_DROPPED: &str = "msgs.dropped";
    /// Deliveries processed.
    pub const DELIVERIES: &str = "deliveries";
    /// Processes colored.
    pub const COLORED: &str = "colored";
    /// Histogram of per-rank coloring times.
    pub const COLORING_TIME: &str = "coloring_time";
}

/// Named counters plus named fixed-bucket histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Record `v` into a histogram, creating it with
    /// [`Histogram::latency_default`] buckets when absent.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::latency_default)
            .record(v);
    }

    /// Pre-register a histogram with custom bounds (replacing any
    /// existing data under that name).
    pub fn register_histogram(&mut self, name: &str, bounds: &[u64]) {
        self.histograms
            .insert(name.to_owned(), Histogram::with_bounds(bounds));
    }

    /// Look up a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms, name-sorted.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold another registry into this one (counters add; histograms
    /// merge bucket-wise and must agree on bounds).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Update from one observability event — the standard accounting
    /// used by [`crate::MetricsSink`]: sends counted per payload kind
    /// (matching the simulator's per-run message totals), drops and
    /// deliveries counted, coloring times recorded into the
    /// [`names::COLORING_TIME`] histogram.
    pub fn record_event(&mut self, event: &Event) {
        use ct_core::protocol::Payload;
        match &event.kind {
            EventKind::SendStart { payload, .. } => self.inc(match payload {
                Payload::Tree => names::MSGS_TREE,
                Payload::Gossip { .. } => names::MSGS_GOSSIP,
                Payload::Correction => names::MSGS_CORRECTION,
                Payload::Ack => names::MSGS_ACK,
            }),
            EventKind::DropDead { .. } => self.inc(names::MSGS_DROPPED),
            EventKind::Deliver { .. } => self.inc(names::DELIVERIES),
            EventKind::Colored { .. } => {
                self.inc(names::COLORED);
                self.observe(names::COLORING_TIME, event.time.steps());
            }
            EventKind::Arrive { .. }
            | EventKind::PhaseBegin { .. }
            | EventKind::PhaseEnd { .. } => {}
        }
    }

    /// Total messages sent, i.e. the sum of the four `msgs.*` send
    /// counters (the simulator's `MessageCounts::total`).
    pub fn messages_total(&self) -> u64 {
        self.counter(names::MSGS_TREE)
            + self.counter(names::MSGS_GOSSIP)
            + self.counter(names::MSGS_CORRECTION)
            + self.counter(names::MSGS_ACK)
    }

    /// Render as a JSON object `{"counters":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (name, v) in &self.counters {
            counters.field_u64(name, *v);
        }
        let mut histograms = JsonObject::new();
        for (name, h) in &self.histograms {
            histograms.field_raw(name, &h.to_json());
        }
        let mut obj = JsonObject::new();
        obj.field_raw("counters", &counters.finish());
        obj.field_raw("histograms", &histograms.finish());
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::with_bounds(&[10, 20, 40]);
        assert_eq!(h.bucket_index(0), 0);
        assert_eq!(h.bucket_index(10), 0); // v ≤ 10 → first bucket
        assert_eq!(h.bucket_index(11), 1);
        assert_eq!(h.bucket_index(20), 1);
        assert_eq!(h.bucket_index(40), 2);
        assert_eq!(h.bucket_index(41), 3); // overflow
    }

    #[test]
    fn record_updates_aggregates() {
        let mut h = Histogram::with_bounds(&[10, 20]);
        for v in [5, 10, 15, 100] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 130);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 32.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::with_bounds(&[10, 20]);
        let mut b = Histogram::with_bounds(&[10, 20]);
        a.record(5);
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(25));
    }

    #[test]
    #[should_panic(expected = "different buckets")]
    fn merge_rejects_mismatched_buckets() {
        let mut a = Histogram::with_bounds(&[10]);
        a.merge(&Histogram::with_bounds(&[20]));
    }

    #[test]
    fn counters_add_and_merge() {
        let mut a = MetricsRegistry::new();
        a.inc("x");
        a.add("x", 2);
        let mut b = MetricsRegistry::new();
        b.add("x", 4);
        b.inc("y");
        b.observe("h", 3);
        a.merge(&b);
        assert_eq!(a.counter("x"), 7);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.counter("absent"), 0);
        assert_eq!(a.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = Histogram::latency_default();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        let json = h.to_json();
        assert!(json.contains("\"min\":null"), "{json}");
    }

    #[test]
    fn registry_json_is_sorted_and_complete() {
        let mut r = MetricsRegistry::new();
        r.inc("b");
        r.inc("a");
        r.observe("lat", 2);
        let json = r.to_json();
        let a = json.find("\"a\"").unwrap();
        let b = json.find("\"b\"").unwrap();
        assert!(a < b, "{json}");
        assert!(json.contains("\"histograms\""), "{json}");
    }
}
