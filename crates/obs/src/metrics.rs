//! A lightweight metrics registry: named counters and fixed-bucket
//! histograms, mergeable across runs. No external dependencies, no
//! interior mutability — producers own a registry (or a
//! [`crate::MetricsSink`]) and merge at join points.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::json::JsonObject;

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `v ≤ bounds[i]` (and `> bounds[i-1]`);
/// one implicit overflow bucket catches everything above the last
/// bound. Exact `count`, `sum`, `min` and `max` are kept alongside.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given strictly increasing upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Reassemble a histogram from raw parts — the counterpart of the
    /// accessors, used to snapshot atomic histograms
    /// ([`crate::telemetry::TelemetryHub`]) and to parse a rendered
    /// [`Histogram::to_json`] back into a value. An empty histogram
    /// (`count == 0`) normalizes `min`/`max` to the empty sentinels
    /// regardless of what was passed.
    ///
    /// # Panics
    /// If `bounds` is invalid (empty or not strictly increasing),
    /// `counts` is not one longer than `bounds`, or the per-bucket
    /// counts do not sum to `count`.
    pub fn from_parts(
        bounds: Vec<u64>,
        counts: Vec<u64>,
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert_eq!(
            counts.len(),
            bounds.len() + 1,
            "counts must cover every bound plus overflow"
        );
        assert_eq!(
            counts.iter().sum::<u64>(),
            count,
            "bucket counts must sum to the total count"
        );
        let (min, max) = if count == 0 {
            (u64::MAX, 0)
        } else {
            (min, max)
        };
        Histogram {
            bounds,
            counts,
            count,
            sum,
            min,
            max,
        }
    }

    /// The default latency buckets: powers of two from 1 to 2²⁰ —
    /// covers both LogP steps (tens to thousands) and microseconds
    /// (up to ~1 s) with relative resolution ≤ 2×.
    pub fn latency_default() -> Histogram {
        let bounds: Vec<u64> = (0..=20).map(|i| 1u64 << i).collect();
        Histogram::with_bounds(&bounds)
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        let idx = self.bucket_index(v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// The bucket index `v` falls into (`bounds.len()` = overflow).
    pub fn bucket_index(&self, v: u64) -> usize {
        self.bounds.partition_point(|&b| b < v)
    }

    /// The configured upper bounds (overflow bucket excluded).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Bucket-interpolated `q`-quantile estimate (`0 ≤ q ≤ 1`), `None`
    /// when empty.
    ///
    /// The target rank `q · count` is located in the cumulative bucket
    /// counts, then interpolated linearly between the bucket's bounds.
    /// The estimate is clamped to the exact observed `[min, max]`, so
    /// `quantile(0.0)` is the minimum and `quantile(1.0)` the maximum;
    /// the overflow bucket (which has no upper bound) interpolates
    /// between the last bound and the observed `max`.
    ///
    /// # Panics
    /// If `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                // Bucket `i` spans (lo, hi]: lo is the previous bound
                // (or 0), hi the own bound (overflow has none → max).
                let lo = if i == 0 {
                    0.0
                } else {
                    self.bounds[i - 1] as f64
                };
                let hi = match self.bounds.get(i) {
                    Some(&b) => b as f64,
                    None => self.max as f64,
                };
                let within = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                let est = lo + (hi - lo) * within;
                return Some(est.clamp(self.min as f64, self.max as f64));
            }
            cum = next;
        }
        Some(self.max as f64)
    }

    /// Median estimate (bucket-interpolated).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (bucket-interpolated).
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (bucket-interpolated).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Merge another histogram with identical bounds into this one.
    ///
    /// # Panics
    /// If the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different buckets"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64_array("bounds", &self.bounds);
        obj.field_u64_array("counts", &self.counts);
        obj.field_u64("count", self.count);
        obj.field_u64("sum", self.sum);
        match (self.min(), self.max()) {
            (Some(min), Some(max)) => {
                obj.field_u64("min", min);
                obj.field_u64("max", max);
            }
            _ => {
                obj.field_null("min");
                obj.field_null("max");
            }
        }
        obj.finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::latency_default()
    }
}

/// Counter and histogram names used by [`MetricsRegistry::record_event`].
pub mod names {
    /// Tree dissemination sends.
    pub const MSGS_TREE: &str = "msgs.tree";
    /// Gossip dissemination sends.
    pub const MSGS_GOSSIP: &str = "msgs.gossip";
    /// Ring-correction sends.
    pub const MSGS_CORRECTION: &str = "msgs.correction";
    /// Acknowledgment sends.
    pub const MSGS_ACK: &str = "msgs.ack";
    /// Messages dropped at dead receivers.
    pub const MSGS_DROPPED: &str = "msgs.dropped";
    /// Deliveries processed.
    pub const DELIVERIES: &str = "deliveries";
    /// Processes colored.
    pub const COLORED: &str = "colored";
    /// Histogram of per-rank coloring times.
    pub const COLORING_TIME: &str = "coloring_time";
}

/// Named counters plus named fixed-bucket histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Record `v` into a histogram, creating it with
    /// [`Histogram::latency_default`] buckets when absent.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::latency_default)
            .record(v);
    }

    /// Pre-register a histogram with custom bounds (replacing any
    /// existing data under that name).
    pub fn register_histogram(&mut self, name: &str, bounds: &[u64]) {
        self.histograms
            .insert(name.to_owned(), Histogram::with_bounds(bounds));
    }

    /// Look up a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms, name-sorted.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold another registry into this one (counters add; histograms
    /// merge bucket-wise and must agree on bounds).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Update from one observability event — the standard accounting
    /// used by [`crate::MetricsSink`]: sends counted per payload kind
    /// (matching the simulator's per-run message totals), drops and
    /// deliveries counted, coloring times recorded into the
    /// [`names::COLORING_TIME`] histogram.
    pub fn record_event(&mut self, event: &Event) {
        use ct_core::protocol::Payload;
        match &event.kind {
            EventKind::SendStart { payload, .. } => self.inc(match payload {
                Payload::Tree => names::MSGS_TREE,
                Payload::Gossip { .. } => names::MSGS_GOSSIP,
                Payload::Correction => names::MSGS_CORRECTION,
                Payload::Ack => names::MSGS_ACK,
            }),
            EventKind::DropDead { .. } => self.inc(names::MSGS_DROPPED),
            EventKind::Deliver { .. } => self.inc(names::DELIVERIES),
            EventKind::Colored { .. } => {
                self.inc(names::COLORED);
                self.observe(names::COLORING_TIME, event.time.steps());
            }
            EventKind::Arrive { .. }
            | EventKind::PhaseBegin { .. }
            | EventKind::PhaseEnd { .. } => {}
        }
    }

    /// Total messages sent, i.e. the sum of the four `msgs.*` send
    /// counters (the simulator's `MessageCounts::total`).
    pub fn messages_total(&self) -> u64 {
        self.counter(names::MSGS_TREE)
            + self.counter(names::MSGS_GOSSIP)
            + self.counter(names::MSGS_CORRECTION)
            + self.counter(names::MSGS_ACK)
    }

    /// Render as a JSON object `{"counters":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (name, v) in &self.counters {
            counters.field_u64(name, *v);
        }
        let mut histograms = JsonObject::new();
        for (name, h) in &self.histograms {
            histograms.field_raw(name, &h.to_json());
        }
        let mut obj = JsonObject::new();
        obj.field_raw("counters", &counters.finish());
        obj.field_raw("histograms", &histograms.finish());
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::with_bounds(&[10, 20, 40]);
        assert_eq!(h.bucket_index(0), 0);
        assert_eq!(h.bucket_index(10), 0); // v ≤ 10 → first bucket
        assert_eq!(h.bucket_index(11), 1);
        assert_eq!(h.bucket_index(20), 1);
        assert_eq!(h.bucket_index(40), 2);
        assert_eq!(h.bucket_index(41), 3); // overflow
    }

    #[test]
    fn record_updates_aggregates() {
        let mut h = Histogram::with_bounds(&[10, 20]);
        for v in [5, 10, 15, 100] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 130);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 32.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::with_bounds(&[10, 20]);
        let mut b = Histogram::with_bounds(&[10, 20]);
        a.record(5);
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(25));
    }

    #[test]
    #[should_panic(expected = "different buckets")]
    fn merge_rejects_mismatched_buckets() {
        let mut a = Histogram::with_bounds(&[10]);
        a.merge(&Histogram::with_bounds(&[20]));
    }

    #[test]
    fn counters_add_and_merge() {
        let mut a = MetricsRegistry::new();
        a.inc("x");
        a.add("x", 2);
        let mut b = MetricsRegistry::new();
        b.add("x", 4);
        b.inc("y");
        b.observe("h", 3);
        a.merge(&b);
        assert_eq!(a.counter("x"), 7);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.counter("absent"), 0);
        assert_eq!(a.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::with_bounds(&[10, 20, 40]);
        // 10 observations spread evenly through the (0, 10] bucket.
        for v in 1..=10 {
            h.record(v);
        }
        // quantile(0.5) → rank 5 of 10 in a bucket spanning (0, 10].
        assert!((h.quantile(0.5).unwrap() - 5.0).abs() < 1e-9);
        // Edges clamp to the exact extrema.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn quantiles_cross_buckets_and_overflow() {
        let mut h = Histogram::with_bounds(&[10, 20]);
        for v in [5, 15, 18, 100] {
            h.record(v);
        }
        // p50 target rank 2 falls at the end of the second bucket's
        // first observation region: between 10 and 20.
        let p50 = h.p50().unwrap();
        assert!((10.0..=20.0).contains(&p50), "{p50}");
        // p99 lands in the overflow bucket: between the last bound and
        // the observed maximum.
        let p99 = h.p99().unwrap();
        assert!((20.0..=100.0).contains(&p99), "{p99}");
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn quantile_of_single_observation_is_that_value() {
        let mut h = Histogram::latency_default();
        h.record(37);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(37.0), "q={q}");
        }
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = Histogram::latency_default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::latency_default();
        for v in [1, 3, 3, 7, 12, 18, 40, 41, 100, 5000] {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let est: Vec<f64> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
        for w in est.windows(2) {
            assert!(w[0] <= w[1], "{est:?}");
        }
        assert_eq!(est[0], 1.0);
        assert_eq!(est[est.len() - 1], 5000.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let _ = Histogram::latency_default().quantile(1.5);
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = Histogram::latency_default();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        let json = h.to_json();
        assert!(json.contains("\"min\":null"), "{json}");
    }

    #[test]
    fn registry_json_is_sorted_and_complete() {
        let mut r = MetricsRegistry::new();
        r.inc("b");
        r.inc("a");
        r.observe("lat", 2);
        let json = r.to_json();
        let a = json.find("\"a\"").unwrap();
        let b = json.find("\"b\"").unwrap();
        assert!(a < b, "{json}");
        assert!(json.contains("\"histograms\""), "{json}");
    }
}
