//! The shared event schema.
//!
//! Both producers — the discrete-event simulator and the threaded
//! cluster runtime — emit exactly these events, so a simulated run and
//! a cluster run of the same protocol can be diffed line by line. Each
//! event carries the producer's logical [`Time`] (LogP steps in the
//! simulator, microseconds since the run epoch on the cluster) and,
//! when a wall clock exists, wall-clock microseconds.

use core::fmt;

use ct_core::protocol::{ColoredVia, Payload};
use ct_logp::{Rank, Time};

use crate::json::JsonObject;

/// Span names used by the built-in producers (free-form strings are
/// also accepted; these are the ones emitted in-tree).
pub mod phases {
    /// One whole broadcast, root send to quiescence.
    pub const BROADCAST: &str = "broadcast";
    /// One campaign repetition.
    pub const REP: &str = "rep";
    /// A whole campaign (all repetitions of one configuration).
    pub const CAMPAIGN: &str = "campaign";
}

/// What happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// `from` started transmitting to `to` (sender port busy `o`).
    SendStart {
        /// Sending rank.
        from: Rank,
        /// Receiving rank.
        to: Rank,
        /// Message kind.
        payload: Payload,
    },
    /// The message reached `to`'s receive port (after `o + L`).
    Arrive {
        /// Sending rank.
        from: Rank,
        /// Receiving rank.
        to: Rank,
        /// Message kind.
        payload: Payload,
    },
    /// `to` finished processing the message (`on_message` ran).
    Deliver {
        /// Sending rank.
        from: Rank,
        /// Receiving rank.
        to: Rank,
        /// Message kind.
        payload: Payload,
    },
    /// The message was dropped because `to` is dead.
    DropDead {
        /// Sending rank.
        from: Rank,
        /// Receiving rank.
        to: Rank,
        /// Message kind.
        payload: Payload,
    },
    /// `rank` became colored (received the broadcast value).
    Colored {
        /// The newly colored rank.
        rank: Rank,
        /// How it was colored.
        via: ColoredVia,
    },
    /// A named span opened (e.g. [`phases::BROADCAST`]).
    PhaseBegin {
        /// Span name.
        name: String,
    },
    /// The matching span closed.
    PhaseEnd {
        /// Span name.
        name: String,
    },
}

impl EventKind {
    /// The schema's stable kind tag (the `"kind"` JSONL field).
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::SendStart { .. } => "send",
            EventKind::Arrive { .. } => "arrive",
            EventKind::Deliver { .. } => "deliver",
            EventKind::DropDead { .. } => "drop",
            EventKind::Colored { .. } => "colored",
            EventKind::PhaseBegin { .. } => "phase_begin",
            EventKind::PhaseEnd { .. } => "phase_end",
        }
    }

    /// Causal ordering class for events carrying the same timestamp.
    ///
    /// Cluster workers buffer events independently and the coordinator
    /// merges them by logical time only, so two causally ordered events
    /// stamped in the same microsecond (a send and its arrival, an
    /// arrival and its delivery) can surface in either order. Sorting by
    /// `(time, order_class, original index)` restores an order in which
    /// causes precede effects: span begins first, then sends, then wire
    /// arrivals (including drops at dead ranks), then deliveries, then
    /// coloring, then span ends. [`crate::monitor::MonitorSink`] sorts
    /// with exactly this key before checking cross-rank invariants.
    pub fn order_class(&self) -> u8 {
        match self {
            EventKind::PhaseBegin { .. } => 0,
            EventKind::SendStart { .. } => 1,
            EventKind::Arrive { .. } | EventKind::DropDead { .. } => 2,
            EventKind::Deliver { .. } => 3,
            EventKind::Colored { .. } => 4,
            EventKind::PhaseEnd { .. } => 5,
        }
    }
}

/// One observability event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Logical time: LogP steps in the simulator, microseconds since
    /// the run epoch on the cluster runtime.
    pub time: Time,
    /// Wall-clock microseconds since the run epoch, where a wall clock
    /// exists (cluster runtime). `None` for simulated runs.
    pub wall_us: Option<u64>,
    /// Broadcast id, for producers multiplexing several concurrent
    /// broadcasts into one stream (the cluster pub/sub layer). `None`
    /// for single-broadcast streams — the id is then implied by the
    /// enclosing [`phases::BROADCAST`] span, and the serialized form is
    /// unchanged.
    pub bcast: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// A simulator event (no wall clock).
    pub fn sim(time: Time, kind: EventKind) -> Event {
        Event {
            time,
            wall_us: None,
            bcast: None,
            kind,
        }
    }

    /// A cluster-runtime event stamped with both clocks.
    pub fn wall(time: Time, wall_us: u64, kind: EventKind) -> Event {
        Event {
            time,
            wall_us: Some(wall_us),
            bcast: None,
            kind,
        }
    }

    /// The same event, labeled as belonging to broadcast `id`.
    pub fn with_bcast(mut self, id: u64) -> Event {
        self.bcast = Some(id);
        self
    }

    /// The stable payload tag used by the JSONL schema.
    pub fn payload_tag(payload: Payload) -> &'static str {
        match payload {
            Payload::Tree => "tree",
            Payload::Gossip { .. } => "gossip",
            Payload::Correction => "correction",
            Payload::Ack => "ack",
        }
    }

    /// Render as one JSONL line (no trailing newline).
    ///
    /// Field order is fixed — `t`, `w?`, `b?`, `kind`, then
    /// kind-specific fields — so identical event streams are
    /// byte-for-byte identical, which the golden-trace regression tests
    /// rely on.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("t", self.time.steps());
        if let Some(w) = self.wall_us {
            obj.field_u64("w", w);
        }
        if let Some(b) = self.bcast {
            obj.field_u64("b", b);
        }
        obj.field_str("kind", self.kind.tag());
        match &self.kind {
            EventKind::SendStart { from, to, payload }
            | EventKind::Arrive { from, to, payload }
            | EventKind::Deliver { from, to, payload }
            | EventKind::DropDead { from, to, payload } => {
                obj.field_u64("from", u64::from(*from));
                obj.field_u64("to", u64::from(*to));
                obj.field_str("payload", Event::payload_tag(*payload));
                if let Payload::Gossip { round } = payload {
                    obj.field_u64("round", u64::from(*round));
                }
            }
            EventKind::Colored { rank, via } => {
                obj.field_u64("rank", u64::from(*rank));
                obj.field_str(
                    "via",
                    match via {
                        ColoredVia::Root => "root",
                        ColoredVia::Dissemination => "dissemination",
                        ColoredVia::Correction => "correction",
                    },
                );
            }
            EventKind::PhaseBegin { name } | EventKind::PhaseEnd { name } => {
                obj.field_str("name", name);
            }
        }
        obj.finish()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_field_order_is_stable() {
        let e = Event::sim(
            Time::new(7),
            EventKind::SendStart {
                from: 0,
                to: 3,
                payload: Payload::Tree,
            },
        );
        assert_eq!(
            e.to_json(),
            r#"{"t":7,"kind":"send","from":0,"to":3,"payload":"tree"}"#
        );
    }

    #[test]
    fn gossip_round_and_wall_clock_are_included() {
        let e = Event::wall(
            Time::new(12),
            345,
            EventKind::Deliver {
                from: 1,
                to: 2,
                payload: Payload::Gossip { round: 4 },
            },
        );
        assert_eq!(
            e.to_json(),
            r#"{"t":12,"w":345,"kind":"deliver","from":1,"to":2,"payload":"gossip","round":4}"#
        );
    }

    #[test]
    fn colored_and_phase_events_serialize() {
        let c = Event::sim(
            Time::new(24),
            EventKind::Colored {
                rank: 63,
                via: ColoredVia::Correction,
            },
        );
        assert_eq!(
            c.to_json(),
            r#"{"t":24,"kind":"colored","rank":63,"via":"correction"}"#
        );
        let p = Event::sim(
            Time::ZERO,
            EventKind::PhaseBegin {
                name: phases::BROADCAST.into(),
            },
        );
        assert_eq!(
            p.to_json(),
            r#"{"t":0,"kind":"phase_begin","name":"broadcast"}"#
        );
    }

    #[test]
    fn bcast_label_serializes_between_clocks_and_kind() {
        let e = Event::wall(
            Time::new(9),
            11,
            EventKind::Colored {
                rank: 4,
                via: ColoredVia::Dissemination,
            },
        )
        .with_bcast(37);
        assert_eq!(
            e.to_json(),
            r#"{"t":9,"w":11,"b":37,"kind":"colored","rank":4,"via":"dissemination"}"#
        );
        // Unlabeled events keep the original schema byte-for-byte.
        let plain = Event::sim(Time::new(9), EventKind::PhaseEnd { name: "rep".into() });
        assert_eq!(
            plain.to_json(),
            r#"{"t":9,"kind":"phase_end","name":"rep"}"#
        );
    }

    #[test]
    fn display_matches_json() {
        let e = Event::sim(Time::new(1), EventKind::PhaseEnd { name: "rep".into() });
        assert_eq!(e.to_string(), e.to_json());
    }
}
