//! Continuous telemetry: timestamped snapshot deltas in a bounded ring.
//!
//! The hub ([`crate::TelemetryHub`]) and the flight recorder observe
//! two instants — a snapshot at run end, the last few thousand records
//! after a crash. Long-lived runs degrade as a *trajectory*: spill
//! rates climbing, delivery rates flatlining minutes before the
//! watchdog fires. This module adds the time axis.
//!
//! A [`Sampler`] is a background thread that polls a hub at a fixed
//! interval (`ClusterConfig::sample(Duration)` /
//! `SimulationBuilder::sample`, `CT_SAMPLE_MS` override) and turns each
//! pair of consecutive snapshots into a [`SeriesSample`] — the
//! per-window counter *deltas* plus point-in-time gauges, stamped with
//! a monotonic clock so NTP steps can never produce negative rates.
//! Samples land in a fixed-capacity [`SeriesRing`] (oldest-first
//! overwrite with a loss counter, same contract as the flight
//! recorder's shard rings) inside a shared [`SeriesStore`], and every
//! window is also fed through a [`HealthEngine`](crate::health) whose
//! fired events accumulate alongside.
//!
//! The store exports one byte-stable JSONL shape for sim and cluster
//! sources — schema tag [`SCHEMA`], `"kind":"sample"` and
//! `"kind":"health"` lines interleaved in time order — consumed by
//! `ct monitor`, `ct analyze --view series` and the `/series.jsonl`
//! HTTP endpoint.
//!
//! Same `Option` discipline as the hub and recorder: no sampler
//! configured means no thread, no atomically-read hub, and
//! byte-identical traces and outcomes.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::health::{HealthConfig, HealthEngine, HealthEvent};
use crate::json::JsonObject;
use crate::telemetry::{Counter, TelemetryHub, TelemetrySnapshot};

/// Schema tag stamped into every exported line; bump on any
/// incompatible change to the JSONL layout.
pub const SCHEMA: &str = "ct-series-v1";

/// Default sampler interval in milliseconds (see [`default_sample_ms`]).
pub const DEFAULT_SAMPLE_MS: u64 = 250;

/// Default ring capacity in windows: 600 windows at the default 250 ms
/// interval is 2.5 minutes of history.
pub const DEFAULT_SERIES_CAP: usize = 600;

/// Sampler interval override: `CT_SAMPLE_MS` when set to a positive
/// integer, else [`DEFAULT_SAMPLE_MS`].
pub fn default_sample_ms() -> u64 {
    parse_sample_ms(std::env::var("CT_SAMPLE_MS").ok().as_deref())
}

/// [`default_sample_ms`] with the raw env value passed in, factored out
/// so tests can cover the parse without mutating the environment.
pub fn parse_sample_ms(raw: Option<&str>) -> u64 {
    raw.and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(DEFAULT_SAMPLE_MS)
}

/// One sample window: the counter deltas between two consecutive hub
/// snapshots plus the later snapshot's gauges, stamped with a
/// monotonic timestamp.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSample {
    /// Where the snapshots came from (`"sim"` or `"cluster"`).
    pub source: String,
    /// Window sequence number, starting at 0.
    pub seq: u64,
    /// Monotonic milliseconds since the sampler started, at window end.
    pub t_ms: u64,
    /// Window length in milliseconds (always >= 1).
    pub dt_ms: u64,
    /// Worker shards feeding the hub.
    pub workers: u64,
    /// Ranks in the run.
    pub ranks: u64,
    /// Per-window counter deltas, full catalogue (zeros included).
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges from the window-end snapshot.
    pub gauges: BTreeMap<String, u64>,
    /// Per-worker `sched.busy_us` deltas this window (one entry per
    /// shard) — the basis of utilization bars and the imbalance rule.
    pub worker_busy_us: Vec<u64>,
}

impl SeriesSample {
    /// The delta window between two snapshots of the *same* hub.
    /// Counters are clamped to zero on decrease (snapshots of a live
    /// hub are monotone; clamping keeps a torn read from producing
    /// nonsense); gauges are taken from `next`; `dt_ms` is clamped to
    /// at least 1 so rates are always finite.
    pub fn between(
        prev: &TelemetrySnapshot,
        next: &TelemetrySnapshot,
        seq: u64,
        t_ms: u64,
        dt_ms: u64,
    ) -> SeriesSample {
        let mut counters = BTreeMap::new();
        for c in Counter::ALL {
            let name = c.name();
            let a = prev.counters.get(name).copied().unwrap_or(0);
            let b = next.counters.get(name).copied().unwrap_or(0);
            counters.insert(name.to_owned(), b.saturating_sub(a));
        }
        let busy = Counter::SchedBusyUs.name();
        let worker_busy_us = next
            .per_worker
            .iter()
            .enumerate()
            .map(|(w, shard)| {
                let b: u64 = shard.get(busy).copied().unwrap_or(0);
                let a: u64 = prev
                    .per_worker
                    .get(w)
                    .and_then(|s| s.get(busy))
                    .copied()
                    .unwrap_or(0);
                b.saturating_sub(a)
            })
            .collect();
        SeriesSample {
            source: next.source.clone(),
            seq,
            t_ms,
            dt_ms: dt_ms.max(1),
            workers: next.workers,
            ranks: next.ranks,
            counters,
            gauges: next.gauges.clone(),
            worker_busy_us,
        }
    }

    /// This window's delta for a dotted counter name (0 if absent).
    pub fn delta(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// This window's per-second rate for a dotted counter name.
    pub fn rate(&self, name: &str) -> f64 {
        self.delta(name) as f64 * 1_000.0 / self.dt_ms as f64
    }

    /// Window-end value of a gauge (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Render as one deterministic JSON line, tagged
    /// `"schema":"ct-series-v1","kind":"sample"`.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("schema", SCHEMA);
        obj.field_str("kind", "sample");
        obj.field_str("source", &self.source);
        obj.field_u64("seq", self.seq);
        obj.field_u64("t_ms", self.t_ms);
        obj.field_u64("dt_ms", self.dt_ms);
        obj.field_u64("workers", self.workers);
        obj.field_u64("ranks", self.ranks);
        let mut counters = JsonObject::new();
        for (name, v) in &self.counters {
            counters.field_u64(name, *v);
        }
        obj.field_raw("counters", &counters.finish());
        let mut gauges = JsonObject::new();
        for (name, v) in &self.gauges {
            gauges.field_u64(name, *v);
        }
        obj.field_raw("gauges", &gauges.finish());
        obj.field_u64_array("worker_busy_us", &self.worker_busy_us);
        obj.finish()
    }
}

/// Fixed-capacity ring of sample windows: oldest-first overwrite with
/// a loss counter, so a reader can tell exactly how much history fell
/// off the back.
#[derive(Debug)]
pub struct SeriesRing {
    cap: usize,
    samples: VecDeque<SeriesSample>,
    dropped: u64,
}

impl SeriesRing {
    /// A ring retaining at most `cap` (>= 1) windows.
    pub fn new(cap: usize) -> SeriesRing {
        let cap = cap.max(1);
        SeriesRing {
            cap,
            samples: VecDeque::with_capacity(cap),
            dropped: 0,
        }
    }

    /// Append one window, evicting the oldest when full.
    pub fn push(&mut self, s: SeriesSample) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(s);
    }

    /// Windows currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no window has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum windows retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Windows evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained windows, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &SeriesSample> {
        self.samples.iter()
    }
}

/// Shared sink a [`Sampler`] fills and consumers read: the sample ring,
/// the full health-event log, and the set of currently active events.
/// Every method takes one short mutex hold; the producer side is a
/// background thread touching it a few times per second.
#[derive(Debug)]
pub struct SeriesStore {
    ring: Mutex<SeriesRing>,
    events: Mutex<Vec<HealthEvent>>,
    active: Mutex<Vec<HealthEvent>>,
}

impl SeriesStore {
    /// A store whose ring retains `cap` windows.
    pub fn new(cap: usize) -> SeriesStore {
        SeriesStore {
            ring: Mutex::new(SeriesRing::new(cap)),
            events: Mutex::new(Vec::new()),
            active: Mutex::new(Vec::new()),
        }
    }

    /// Append one sample window.
    pub fn push_sample(&self, s: SeriesSample) {
        self.ring.lock().unwrap().push(s);
    }

    /// Append newly fired events and replace the active set.
    pub fn record_events(&self, fired: Vec<HealthEvent>, active: Vec<HealthEvent>) {
        if !fired.is_empty() {
            self.events.lock().unwrap().extend(fired);
        }
        *self.active.lock().unwrap() = active;
    }

    /// The retained sample windows, oldest first.
    pub fn samples(&self) -> Vec<SeriesSample> {
        self.ring.lock().unwrap().samples().cloned().collect()
    }

    /// Windows evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped()
    }

    /// Every health event fired since the store was created.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Total events fired so far; use as a mark for
    /// [`SeriesStore::events_from`].
    pub fn events_len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Events fired at or after a mark previously taken with
    /// [`SeriesStore::events_len`].
    pub fn events_from(&self, mark: usize) -> Vec<HealthEvent> {
        let events = self.events.lock().unwrap();
        events.get(mark..).unwrap_or(&[]).to_vec()
    }

    /// Events whose condition currently holds.
    pub fn active(&self) -> Vec<HealthEvent> {
        self.active.lock().unwrap().clone()
    }

    /// Active events of critical severity (drives the `/health`
    /// endpoint's non-200 status).
    pub fn active_critical(&self) -> Vec<HealthEvent> {
        self.active
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.severity == crate::health::Severity::Critical)
            .cloned()
            .collect()
    }

    /// Export the retained windows and the full health log as JSONL:
    /// one `"kind":"sample"` or `"kind":"health"` line per record,
    /// merged in time order (health after samples at equal `t_ms`),
    /// trailing newline included. Empty string when nothing was
    /// recorded.
    pub fn export_jsonl(&self) -> String {
        let samples = self.samples();
        let events = self.events();
        let mut lines: Vec<(u64, u8, String)> = Vec::with_capacity(samples.len() + events.len());
        for s in &samples {
            lines.push((s.t_ms, 0, s.to_json()));
        }
        for e in &events {
            lines.push((e.t_ms, 1, e.to_json()));
        }
        lines.sort_by_key(|a| (a.0, a.1));
        let mut out = String::new();
        for (_, _, line) in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Background thread polling a [`TelemetryHub`] into a [`SeriesStore`];
/// see the module docs. Dropping the sampler stops and joins the
/// thread.
#[derive(Debug)]
pub struct Sampler {
    store: Arc<SeriesStore>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Spawn a sampler polling `hub` every `interval` (clamped to at
    /// least 1 ms), tagging snapshots with `source`, retaining `cap`
    /// windows and evaluating `rules` per window.
    pub fn spawn(
        hub: Arc<TelemetryHub>,
        source: &str,
        interval: Duration,
        cap: usize,
        rules: HealthConfig,
    ) -> Sampler {
        let store = Arc::new(SeriesStore::new(cap));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_store = Arc::clone(&store);
        let thread_stop = Arc::clone(&stop);
        let source = source.to_owned();
        let interval = interval.max(Duration::from_millis(1));
        let thread = std::thread::Builder::new()
            .name("ct-sampler".to_owned())
            .spawn(move || {
                let started = Instant::now();
                let mut engine = HealthEngine::new(rules);
                let mut prev = hub.snapshot().with_source(&source);
                let mut prev_ms = 0u64;
                let mut seq = 0u64;
                while !thread_stop.load(Ordering::Acquire) {
                    // Sleep in short slices so stop() returns promptly
                    // even with second-scale intervals.
                    let mut slept = Duration::ZERO;
                    while slept < interval && !thread_stop.load(Ordering::Acquire) {
                        let slice = (interval - slept).min(Duration::from_millis(25));
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let t_ms = started.elapsed().as_millis() as u64;
                    let next = hub.snapshot().with_source(&source);
                    let sample = SeriesSample::between(
                        &prev,
                        &next,
                        seq,
                        t_ms,
                        t_ms.saturating_sub(prev_ms),
                    );
                    let fired = engine.observe(&sample);
                    thread_store.push_sample(sample);
                    thread_store.record_events(fired, engine.active().to_vec());
                    prev = next;
                    prev_ms = t_ms;
                    seq += 1;
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            store,
            stop,
            thread: Some(thread),
        }
    }

    /// The shared store the sampler fills.
    pub fn store(&self) -> Arc<SeriesStore> {
        Arc::clone(&self.store)
    }

    /// Signal the thread to stop and join it (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Dist;

    fn sample(seq: u64) -> SeriesSample {
        SeriesSample {
            source: "test".to_owned(),
            seq,
            t_ms: seq * 100,
            dt_ms: 100,
            workers: 1,
            ranks: 4,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            worker_busy_us: vec![seq],
        }
    }

    #[test]
    fn sample_ms_parsing() {
        assert_eq!(parse_sample_ms(None), DEFAULT_SAMPLE_MS);
        assert_eq!(parse_sample_ms(Some("50")), 50);
        assert_eq!(parse_sample_ms(Some(" 125 ")), 125);
        assert_eq!(parse_sample_ms(Some("0")), DEFAULT_SAMPLE_MS);
        assert_eq!(parse_sample_ms(Some("-5")), DEFAULT_SAMPLE_MS);
        assert_eq!(parse_sample_ms(Some("soon")), DEFAULT_SAMPLE_MS);
    }

    #[test]
    fn between_computes_window_deltas_and_busy_split() {
        let hub = TelemetryHub::new(2, 4);
        hub.add(0, Counter::MsgsDelivered, 3);
        hub.add(0, Counter::SchedBusyUs, 100);
        hub.add(1, Counter::SchedBusyUs, 10);
        let prev = hub.snapshot().with_source("cluster");
        hub.add(0, Counter::MsgsDelivered, 5);
        hub.add(1, Counter::SchedBusyUs, 40);
        hub.set_runq_depth(2);
        let next = hub.snapshot().with_source("cluster");
        let s = SeriesSample::between(&prev, &next, 3, 1000, 250);
        assert_eq!(s.seq, 3);
        assert_eq!(s.delta("msgs.delivered"), 5);
        assert_eq!(s.delta("sched.busy_us"), 40);
        assert_eq!(s.delta("msgs.sent"), 0);
        assert_eq!(s.gauge("runq.depth"), 2);
        assert_eq!(s.worker_busy_us, vec![0, 40]);
        assert_eq!(s.rate("msgs.delivered"), 20.0);
        // The full catalogue is present even at zero.
        assert_eq!(s.counters.len(), Counter::ALL.len());
    }

    #[test]
    fn sample_json_is_deterministic_and_tagged() {
        let mut s = sample(2);
        s.counters.insert("msgs.delivered".to_owned(), 7);
        s.gauges.insert("runq.depth".to_owned(), 1);
        let json = s.to_json();
        assert!(
            json.starts_with(
                "{\"schema\":\"ct-series-v1\",\"kind\":\"sample\",\"source\":\"test\",\
                 \"seq\":2,\"t_ms\":200,\"dt_ms\":100,\"workers\":1,\"ranks\":4"
            ),
            "{json}"
        );
        assert!(
            json.contains("\"counters\":{\"msgs.delivered\":7}"),
            "{json}"
        );
        assert!(json.ends_with("\"worker_busy_us\":[2]}"), "{json}");
        assert_eq!(json, s.to_json());
    }

    #[test]
    fn ring_overwrites_oldest_first_and_counts_drops() {
        let mut ring = SeriesRing::new(3);
        for seq in 0..5 {
            ring.push(sample(seq));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u64> = ring.samples().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn store_merges_samples_and_events_in_time_order() {
        let store = SeriesStore::new(16);
        store.push_sample(sample(0));
        store.push_sample(sample(1));
        let e = HealthEvent {
            rule: "stall_precursor".to_owned(),
            severity: crate::health::Severity::Critical,
            seq: 1,
            t_ms: 100,
            values: vec![],
            message: "wedged".to_owned(),
        };
        store.record_events(vec![e.clone()], vec![e]);
        let jsonl = store.export_jsonl();
        let kinds: Vec<&str> = jsonl
            .lines()
            .map(|l| {
                if l.contains("\"kind\":\"sample\"") {
                    "sample"
                } else {
                    "health"
                }
            })
            .collect();
        // The t_ms=100 health line lands after the t_ms=100 sample.
        assert_eq!(kinds, vec!["sample", "sample", "health"]);
        assert!(jsonl.ends_with('\n'));
        assert_eq!(store.active_critical().len(), 1);
        assert_eq!(store.events_from(0).len(), 1);
        assert_eq!(store.events_from(1).len(), 0);
    }

    #[test]
    fn sampler_observes_a_live_hub_and_stops_cleanly() {
        let hub = Arc::new(TelemetryHub::new(1, 4));
        let mut sampler = Sampler::spawn(
            Arc::clone(&hub),
            "cluster",
            Duration::from_millis(5),
            64,
            HealthConfig::default(),
        );
        for i in 0..20 {
            hub.add(0, Counter::MsgsDelivered, 2);
            hub.observe(0, Dist::QuantumUs, i);
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        let store = sampler.store();
        let samples = store.samples();
        assert!(!samples.is_empty(), "sampler recorded at least one window");
        let delivered: u64 = samples.iter().map(|s| s.delta("msgs.delivered")).sum();
        assert!(delivered > 0 && delivered <= 40, "deltas sum within totals");
        // Monotone stamps, positive windows.
        for w in samples.windows(2) {
            assert!(w[1].seq == w[0].seq + 1);
            assert!(w[1].t_ms >= w[0].t_ms);
        }
        assert!(samples.iter().all(|s| s.dt_ms >= 1));
        // Stopping twice is fine.
        sampler.stop();
    }
}
