//! Cross-validation of §4.2's closed forms against the event simulator —
//! "simulation and analysis agree in this aspect" (Figure 10 discussion).

use ct_analysis::{lff_scc, lff_scc_discrete, lscc_bounds, m_scc, m_scc_discrete};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::{BroadcastSpec, ColoredVia};
use ct_core::tree::{ring, TreeKind};
use ct_logp::LogP;
use ct_sim::{FaultPlan, Simulation};

/// Run a synchronized-checked corrected broadcast and return
/// (L_SCC in steps, correction messages, dissemination-coloring mask).
fn run_scc(p: u32, logp: LogP, faults: FaultPlan) -> (u64, u64, Vec<bool>) {
    let spec = BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
    let tree = TreeKind::BINOMIAL.build(p, &logp).unwrap();
    let start = tree.dissemination_deadline(&logp);
    let out = Simulation::builder(p, logp)
        .faults(faults)
        .build()
        .run(&spec)
        .unwrap();
    assert!(out.all_live_colored(), "checked correction must color all");
    let lscc = out.quiescence.since(start).steps();
    let diss_mask: Vec<bool> = out
        .colored_via
        .iter()
        .map(|v| matches!(v, Some(ColoredVia::Root) | Some(ColoredVia::Dissemination)))
        .collect();
    (lscc, out.messages.correction, diss_mask)
}

#[test]
fn lemma2_and_corollary1_exact_for_paper_params() {
    let logp = LogP::PAPER;
    for p in [16u32, 64, 256, 1024] {
        let (lscc, corr_msgs, _) = run_scc(p, logp, FaultPlan::none(p));
        assert_eq!(lscc, lff_scc(&logp).steps(), "L_FF_SCC at P={p}");
        assert_eq!(
            corr_msgs,
            m_scc(&logp) * p as u64,
            "M_SCC per process at P={p}"
        );
    }
}

#[test]
fn lemma2_exact_whenever_o_divides_l() {
    // The paper's ⌊L/o⌋ closed form is exact for o | L — which includes
    // every configuration its evaluation uses (o = 1).
    for (l, o) in [
        (1u64, 1u64),
        (2, 1),
        (3, 1),
        (4, 1),
        (2, 2),
        (4, 2),
        (3, 3),
        (6, 3),
    ] {
        let logp = LogP::new(l, o, 1).unwrap();
        let (lscc, corr_msgs, _) = run_scc(64, logp, FaultPlan::none(64));
        assert_eq!(
            lscc,
            lff_scc(&logp).steps(),
            "L_FF_SCC mismatch for L={l}, o={o}"
        );
        assert_eq!(
            corr_msgs,
            m_scc(&logp) * 64,
            "M_SCC mismatch for L={l}, o={o}"
        );
    }
}

#[test]
fn discrete_forms_exact_for_all_logp_parameters() {
    // With a discrete receive port the general closed form uses ⌈L/o⌉;
    // it agrees with Lemma 2 whenever o | L and is exact everywhere.
    for (l, o) in [
        (1u64, 1u64),
        (2, 1),
        (5, 1),
        (2, 2),
        (3, 2),
        (5, 2),
        (7, 2),
        (3, 3),
        (4, 3),
        (5, 3),
        (8, 3),
    ] {
        let logp = LogP::new(l, o, 1).unwrap();
        let (lscc, corr_msgs, _) = run_scc(64, logp, FaultPlan::none(64));
        assert_eq!(
            lscc,
            lff_scc_discrete(&logp).steps(),
            "discrete L_FF_SCC mismatch for L={l}, o={o}"
        );
        assert_eq!(
            corr_msgs,
            m_scc_discrete(&logp) * 64,
            "discrete M_SCC mismatch for L={l}, o={o}"
        );
        // The paper's form never exceeds the discrete one and differs by
        // exactly (⌈L/o⌉ - ⌊L/o⌋)·o ∈ {0, o}.
        assert!(lff_scc(&logp) <= lff_scc_discrete(&logp));
        assert!(
            lff_scc_discrete(&logp).steps() - lff_scc(&logp).steps() <= o,
            "L={l}, o={o}"
        );
    }
}

#[test]
fn lemma3_bounds_hold_under_random_failures() {
    let logp = LogP::PAPER;
    let p = 1 << 12;
    for seed in 0..30u64 {
        let faults = FaultPlan::random_rate(p, 0.01, seed).unwrap();
        let (lscc, _, diss_mask) = run_scc(p, logp, faults);
        let g_max = ring::max_gap(&diss_mask);
        let (lo, hi) = lscc_bounds(g_max, &logp);
        assert!(
            lscc >= lo.steps() && lscc <= hi.steps(),
            "seed {seed}: L_SCC={lscc} outside [{lo}, {hi}] for g_max={g_max}"
        );
    }
}

#[test]
fn lemma3_bounds_hold_for_adversarial_contiguous_gap() {
    // An in-order tree failure produces one big contiguous gap — the
    // worst case the interleaving avoids. The bounds are about g_max,
    // not about how the gap arose, so they must still hold.
    let logp = LogP::PAPER;
    let p = 256u32;
    for gap_len in [1u32, 2, 5, 10, 25] {
        // Kill a contiguous run 100..100+gap_len.
        let ranks: Vec<u32> = (100..100 + gap_len).collect();
        let faults = FaultPlan::from_ranks(p, &ranks).unwrap();
        let (lscc, _, diss_mask) = run_scc(p, logp, faults);
        let g_max = ring::max_gap(&diss_mask);
        // The dead run plus any orphaned descendants.
        assert!(g_max >= gap_len);
        let (lo, hi) = lscc_bounds(g_max, &logp);
        assert!(
            lscc >= lo.steps() && lscc <= hi.steps(),
            "gap {gap_len}: L_SCC={lscc} outside [{lo}, {hi}] (g_max={g_max})"
        );
    }
}
