//! Lemmas 2 and 3 and Corollary 1 (§4.2).
//!
//! With synchronized checked correction all processes start at the same
//! instant `T`. Fault-free, each process sends alternately left/right at
//! rate `1/o` and stops after it has heard from both sides from a
//! process it already covered, giving the exact quiescence cost
//!
//! ```text
//! L_FF_SCC = 4o + L + ⌊L/o⌋·o            (Lemma 2)
//! M_SCC    = 3 + ⌊L/o⌋   messages/process (Corollary 1)
//! ```
//!
//! Under failures the cost is governed by the maximum gap `g_max`
//! (uncolored processes send nothing, so probes must cross the gap):
//!
//! ```text
//! L_FF_SCC + g_max·o ≤ L_SCC ≤ L_FF_SCC + (2·g_max + 1)·o   (Lemma 3)
//! ```
//!
//! Figure 10 overlays exactly these two lines on the simulated
//! `(g_max, L_SCC)` scatter.

use ct_logp::{LogP, Time};

/// Lemma 2: fault-free quiescence latency of synchronized checked
/// correction, counted from the synchronized start.
///
/// ```
/// use ct_analysis::{lff_scc, m_scc};
/// use ct_logp::LogP;
///
/// // The paper's parameters: 8 steps, 5 messages per process (§4.1).
/// assert_eq!(lff_scc(&LogP::PAPER).steps(), 8);
/// assert_eq!(m_scc(&LogP::PAPER), 5);
/// ```
pub fn lff_scc(logp: &LogP) -> Time {
    Time::new(4 * logp.o() + logp.l() + logp.l_over_o() * logp.o())
}

/// Corollary 1: fault-free messages per process of synchronized checked
/// correction.
pub fn m_scc(logp: &LogP) -> u64 {
    3 + logp.l_over_o()
}

/// `⌈L/o⌉` — the discrete-model counterpart of the paper's `⌊L/o⌋`.
fn ceil_l_over_o(logp: &LogP) -> u64 {
    logp.l().div_ceil(logp.o())
}

/// Exact fault-free quiescence latency of synchronized checked
/// correction in the discrete receive-port model:
/// `4o + L + ⌈L/o⌉·o`.
///
/// A process hears the second side once its receive port has processed
/// both neighbor messages, at `3o + L`; polls happen at multiples of
/// `o`, so the last send is at the largest multiple of `o` strictly
/// below `3o + L`. When `o | L` this collapses to Lemma 2's
/// `4o + L + ⌊L/o⌋·o` — which covers every configuration the paper
/// evaluates (`o = 1`) — and otherwise exceeds it by
/// `(⌈L/o⌉ - ⌊L/o⌋)·o < o`. See EXPERIMENTS.md for the derivation.
pub fn lff_scc_discrete(logp: &LogP) -> Time {
    Time::new(4 * logp.o() + logp.l() + ceil_l_over_o(logp) * logp.o())
}

/// Discrete-model messages per process of synchronized checked
/// correction: `3 + ⌈L/o⌉` (equals Corollary 1 whenever `o | L`).
pub fn m_scc_discrete(logp: &LogP) -> u64 {
    3 + ceil_l_over_o(logp)
}

/// Lemma 3: inclusive `(lower, upper)` bounds on the quiescence latency
/// of synchronized checked correction with maximum gap `g_max`
/// (`g_max = 0` collapses to the fault-free Lemma 2 value).
pub fn lscc_bounds(g_max: u32, logp: &LogP) -> (Time, Time) {
    let base = lff_scc(logp);
    if g_max == 0 {
        return (base, base);
    }
    let o = logp.o();
    (base + (g_max as u64) * o, base + (2 * g_max as u64 + 1) * o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_give_eight_steps_and_five_messages() {
        // §4.1/§4.2: with L = 2, o = 1 "checked correction lasts 8 time
        // steps" and "each of them sends 5 correction messages".
        let logp = LogP::PAPER;
        assert_eq!(lff_scc(&logp), Time::new(8));
        assert_eq!(m_scc(&logp), 5);
    }

    #[test]
    fn table1_headline_fault_free_row() {
        // Table 1 caption: "with no faults g_max = 0 and L_SCC = 8".
        let (lo, hi) = lscc_bounds(0, &LogP::PAPER);
        assert_eq!(lo, Time::new(8));
        assert_eq!(hi, Time::new(8));
    }

    #[test]
    fn bounds_grow_linearly_in_gap() {
        let logp = LogP::PAPER;
        for g in 1..50u32 {
            let (lo, hi) = lscc_bounds(g, &logp);
            assert_eq!(lo, Time::new(8 + g as u64));
            assert_eq!(hi, Time::new(8 + 2 * g as u64 + 1));
            assert!(lo <= hi);
        }
    }

    #[test]
    fn closed_forms_for_other_parameters() {
        // L=4, o=2: L_FF = 8 + 4 + 2·2 = 16; M = 3 + 2 = 5.
        let logp = LogP::new(4, 2, 2).unwrap();
        assert_eq!(lff_scc(&logp), Time::new(16));
        assert_eq!(m_scc(&logp), 5);
        // L=1, o=3: ⌊1/3⌋ = 0 → L_FF = 12 + 1 = 13; M = 3.
        let logp = LogP::new(1, 3, 3).unwrap();
        assert_eq!(lff_scc(&logp), Time::new(13));
        assert_eq!(m_scc(&logp), 3);
    }

    #[test]
    fn message_count_and_latency_are_consistent() {
        // The last of the M_SCC messages starts at (M_SCC - 1)·o and is
        // processed 2o + L later — exactly L_FF_SCC.
        for l in 1..6u64 {
            for o in 1..4u64 {
                let logp = LogP::new(l, o, 1).unwrap();
                let t_last_send = (m_scc(&logp) - 1) * o;
                assert_eq!(
                    lff_scc(&logp),
                    Time::new(t_last_send + logp.transit_steps()),
                    "L={l}, o={o}"
                );
            }
        }
    }
}
