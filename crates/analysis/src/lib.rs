//! # ct-analysis — closed-form analysis and statistics
//!
//! The executable form of §4.2: the fault-free cost of synchronized
//! checked correction (Lemma 2, Corollary 1), the gap-size bounds on
//! correction latency under failures (Lemma 3), and the descriptive
//! statistics (means, quantiles, whiskers) used to aggregate Monte-Carlo
//! campaigns into the paper's figures and Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod stats;

pub use bounds::{lff_scc, lff_scc_discrete, lscc_bounds, m_scc, m_scc_discrete};
pub use stats::{percentile, Summary};
