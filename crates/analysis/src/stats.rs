//! Descriptive statistics for Monte-Carlo campaigns.
//!
//! The paper reports means with 5%/95% (and 10%/90%) whisker quantiles
//! (Figures 1b, 7, 8, 9), medians with 25%/75% ribbons (Figures 11, 12),
//! and 99% / 99.9% / max percentiles (Table 1). [`Summary`] computes all
//! of these in one pass over a sample.

/// The `q`-quantile (`0 ≤ q ≤ 1`) of a sample, by the nearest-rank
/// method on a sorted copy: `q = 0` is the minimum, `q = 1` the maximum.
/// Panics on an empty sample.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// One-pass summary of a sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50%).
    pub median: f64,
    /// 5% quantile (lower whisker of Figures 7–9).
    pub p05: f64,
    /// 10% quantile (lower whisker of Figure 1b).
    pub p10: f64,
    /// 25% quantile (ribbon of Figures 11–12).
    pub p25: f64,
    /// 75% quantile.
    pub p75: f64,
    /// 90% quantile.
    pub p90: f64,
    /// 95% quantile.
    pub p95: f64,
    /// 99% quantile (Table 1).
    pub p99: f64,
    /// 99.9% quantile (Table 1).
    pub p999: f64,
}

impl Summary {
    /// Summarize a non-empty sample.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "summary of empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let q = |p: f64| {
            let idx = ((p * (n - 1) as f64).round() as usize).min(n - 1);
            sorted[idx]
        };
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: q(0.5),
            p05: q(0.05),
            p10: q(0.10),
            p25: q(0.25),
            p75: q(0.75),
            p90: q(0.90),
            p95: q(0.95),
            p99: q(0.99),
            p999: q(0.999),
        }
    }

    /// Summarize integer samples (latencies, message counts, gaps).
    pub fn of_u64<I: IntoIterator<Item = u64>>(values: I) -> Summary {
        let v: Vec<f64> = values.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::of(&[4.0; 10]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p999, 4.0);
    }

    #[test]
    fn known_small_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        // Sample std of 1..5 = sqrt(2.5).
        assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (0..101).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 0.5), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        assert_eq!(percentile(&[9.0, 1.0, 5.0], 0.5), 5.0);
    }

    #[test]
    fn of_u64_converts() {
        let s = Summary::of_u64([8u64, 10, 12]);
        assert_eq!(s.mean, 10.0);
        assert_eq!(s.median, 10.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p05, 7.5);
        assert_eq!(s.p999, 7.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn quantiles_are_monotone() {
        let v: Vec<f64> = (0..1000).map(|x| ((x * 7919) % 1000) as f64).collect();
        let s = Summary::of(&v);
        assert!(s.min <= s.p05);
        assert!(s.p05 <= s.p10);
        assert!(s.p10 <= s.p25);
        assert!(s.p25 <= s.median);
        assert!(s.median <= s.p75);
        assert!(s.p75 <= s.p90);
        assert!(s.p90 <= s.p95);
        assert!(s.p95 <= s.p99);
        assert!(s.p99 <= s.p999);
        assert!(s.p999 <= s.max);
    }
}
