//! Golden-trace regression: the JSONL event stream of a fixed
//! configuration must stay byte-for-byte identical across code changes.
//!
//! The golden file is checked in at `tests/data/golden_p4.jsonl`; to
//! regenerate it after an *intentional* schema or engine change, run
//! `CT_REGEN_GOLDEN=1 cargo test -p ct-sim --test golden_jsonl` and
//! review the diff.

use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_logp::LogP;
use ct_obs::{EventKind, EventSink, VecSink};
use ct_sim::{FaultPlan, Simulation};

const GOLDEN_PATH: &str = "tests/data/golden_p4.jsonl";
const GOLDEN: &str = include_str!("data/golden_p4.jsonl");

/// The pinned configuration: small enough to review by hand, rich
/// enough to exercise tree + correction payloads, drops and coloring.
fn golden_stream() -> VecSink {
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 2 },
    );
    let faults = FaultPlan::from_ranks(4, &[2]).expect("valid fault plan");
    let sim = Simulation::builder(4, LogP::PAPER)
        .faults(faults)
        .seed(1)
        .build();
    let mut sink = VecSink::new();
    sim.run_with_sink(&spec, &mut sink).expect("run succeeds");
    sink
}

#[test]
fn golden_trace_is_byte_for_byte_stable() {
    let jsonl = golden_stream().to_jsonl();
    if std::env::var_os("CT_REGEN_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &jsonl).expect("write golden");
        return;
    }
    assert_eq!(
        jsonl, GOLDEN,
        "event stream diverged from the golden trace; if intentional, \
         regenerate with CT_REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_trace_survives_arena_reuse_byte_for_byte() {
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 2 },
    );
    let golden_sim = || {
        Simulation::builder(4, LogP::PAPER)
            .faults(FaultPlan::from_ranks(4, &[2]).expect("valid fault plan"))
            .seed(1)
            .build()
    };
    let mut arena = ct_sim::RunArena::new();
    // Dirty the arena with runs of a different shape (larger P, other
    // protocol, faults elsewhere) before and between golden runs: the
    // reset must erase every trace of them.
    let other_spec = BroadcastSpec::corrected_tree_sync(TreeKind::LAME2, CorrectionKind::Checked);
    let other = Simulation::builder(64, LogP::PAPER)
        .faults(FaultPlan::from_ranks(64, &[3, 17]).unwrap())
        .seed(9)
        .build();
    other.run_reusable(&other_spec, &mut arena).unwrap();
    for _ in 0..2 {
        let mut sink = VecSink::new();
        golden_sim()
            .run_with_sink_reusable(&spec, &mut sink, &mut arena)
            .expect("run succeeds");
        assert_eq!(
            sink.to_jsonl(),
            GOLDEN,
            "a reused arena must replay the golden trace byte-for-byte"
        );
        other.run_reusable(&other_spec, &mut arena).unwrap();
    }
}

#[test]
fn golden_stream_is_schema_complete() {
    let sink = golden_stream();
    let has = |pred: &dyn Fn(&EventKind) -> bool| sink.events.iter().any(|e| pred(&e.kind));
    assert!(has(&|k| matches!(k, EventKind::SendStart { .. })));
    assert!(has(&|k| matches!(k, EventKind::Deliver { .. })));
    assert!(
        has(&|k| matches!(k, EventKind::DropDead { .. })),
        "rank 2 is dead"
    );
    assert!(has(&|k| matches!(k, EventKind::Colored { .. })));
    assert!(has(&|k| matches!(k, EventKind::PhaseBegin { .. })));
    assert!(has(&|k| matches!(k, EventKind::PhaseEnd { .. })));
}

#[test]
fn sink_events_agree_with_outcome_metrics() {
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 2 },
    );
    let sim = Simulation::builder(16, LogP::PAPER).seed(3).build();
    let mut sink = VecSink::new();
    let out = sim.run_with_sink(&spec, &mut sink).unwrap();

    let sends = sink
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SendStart { .. }))
        .count() as u64;
    assert_eq!(sends, out.messages.total());

    // Every Colored event matches the outcome's colored_at/colored_via.
    for e in &sink.events {
        if let EventKind::Colored { rank, via } = e.kind {
            assert_eq!(out.colored_at[rank as usize], Some(e.time));
            assert_eq!(out.colored_via[rank as usize], Some(via));
        }
    }
    let colored_events = sink
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Colored { .. }))
        .count();
    assert_eq!(
        colored_events,
        out.colored_at.iter().filter(|c| c.is_some()).count()
    );
}

#[test]
fn observed_and_unobserved_runs_agree() {
    // The sink must be a pure observer: metrics are identical with the
    // default NullSink and with a recording sink.
    let spec = BroadcastSpec::corrected_tree_sync(TreeKind::LAME2, CorrectionKind::Checked);
    let faults = FaultPlan::random_count(64, 5, 11).unwrap();
    let sim = Simulation::builder(64, LogP::PAPER)
        .faults(faults)
        .seed(5)
        .build();
    let plain = sim.run(&spec).unwrap();
    let mut sink = VecSink::new();
    let observed = sim.run_with_sink(&spec, &mut sink).unwrap();
    assert_eq!(plain.colored_at, observed.colored_at);
    assert_eq!(plain.messages, observed.messages);
    assert_eq!(plain.quiescence, observed.quiescence);
    assert_eq!(plain.events, observed.events);
    assert!(!sink.events.is_empty());
}

#[test]
fn null_sink_reports_disabled() {
    assert!(!ct_obs::NullSink.enabled());
}
