//! Figure 5 cross-check: the growth process that *constructs* Lamé and
//! optimal trees predicts per-rank ready times; under matching LogP
//! parameters, the event simulator must color each rank at exactly
//! those times. This ties the combinatorial construction (ct-core) to
//! the operational semantics (ct-sim).

use ct_core::protocol::BroadcastSpec;
use ct_core::tree::grow::{creation_times, Growth};
use ct_core::tree::{Ordering, TreeKind};
use ct_logp::{LogP, Time};
use ct_sim::Simulation;

#[test]
fn figure5_lame3_simulated_coloring_matches_growth_times() {
    // L = o = 1 makes the k = 3 Lamé tree latency-optimal; the growth
    // iteration counter then *is* simulated time.
    let logp = LogP::FIG5;
    let p = 9u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::Lame {
        k: 3,
        order: Ordering::Interleaved,
    });
    let out = Simulation::builder(p, logp).build().run(&spec).unwrap();
    let expected = creation_times(p, Growth::lame(3));
    for (r, &t) in expected.iter().enumerate() {
        assert_eq!(out.colored_at[r], Some(Time::new(t)), "rank {r}");
    }
    // The paper's Figure 5 shows the whole broadcast finishing at 7.
    assert_eq!(out.coloring_latency, Time::new(7));
}

#[test]
fn optimal_tree_growth_times_match_simulation_for_any_o_dividing_l() {
    for (l, o) in [(2u64, 1u64), (3, 1), (2, 2), (6, 3)] {
        let logp = LogP::new(l, o, 1).unwrap();
        let p = 200u32;
        let spec = BroadcastSpec::plain_tree(TreeKind::OPTIMAL);
        let out = Simulation::builder(p, logp).build().run(&spec).unwrap();
        let expected = creation_times(p, Growth::optimal(&logp));
        for (r, &t) in expected.iter().enumerate() {
            assert_eq!(
                out.colored_at[r],
                Some(Time::new(t)),
                "L={l} o={o} rank {r}"
            );
        }
    }
}

#[test]
fn lame_tree_growth_times_are_upper_bounded_by_simulation_only_when_optimal() {
    // A Lamé tree whose k ≠ 2o + L is *not* latency-optimal: its real
    // (simulated) schedule differs from the iteration counter. The
    // structure stays the same ("If network parameters change, the tree
    // structure stays the same, though the protocol stops being
    // latency-optimal", §3.2.2).
    let logp = LogP::PAPER; // 2o + L = 4, but k = 2
    let p = 64u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::LAME2);
    let out = Simulation::builder(p, logp).build().run(&spec).unwrap();
    let iters = creation_times(p, Growth::lame(2));
    // Iteration counts underestimate real steps (each iteration is ≥ 1
    // step but transit is 4): simulated times must be strictly larger
    // for every non-root rank.
    for (r, &t) in iters.iter().enumerate().skip(1) {
        assert!(
            out.colored_at[r].unwrap() > Time::new(t),
            "rank {r}: {} vs iteration {t}",
            out.colored_at[r].unwrap()
        );
    }
}
