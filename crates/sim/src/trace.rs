//! Optional event traces (Figure 5-style timelines).
//!
//! Tracing is off by default — at `P = 2¹⁹` a trace would dwarf the
//! simulation itself — and is enabled per run for debugging, the
//! `protocol_trace` example and timeline tests.

use core::fmt;

use ct_core::protocol::Payload;
use ct_logp::{Rank, Time};

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// `from` started transmitting to `to` (sender port busy `o`).
    SendStart,
    /// The message reached `to`'s receive port (after `o + L`).
    Arrive,
    /// `to` finished processing the message (`on_message` ran).
    Deliver,
    /// The message was dropped because `to` is dead.
    DropDead,
}

/// One timeline entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub time: Time,
    /// Event class.
    pub kind: TraceKind,
    /// Sending rank.
    pub from: Rank,
    /// Receiving rank.
    pub to: Rank,
    /// Message kind.
    pub payload: Payload,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            TraceKind::SendStart => "send ",
            TraceKind::Arrive => "arrive",
            TraceKind::Deliver => "deliver",
            TraceKind::DropDead => "drop",
        };
        write!(
            f,
            "t={:>5} {kind:<8} {:>4} → {:<4} {:?}",
            self.time, self.from, self.to, self.payload
        )
    }
}

/// A recorded run timeline, in event order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All recorded events.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Events involving `rank` (as sender or receiver).
    pub fn for_rank(&self, rank: Rank) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.from == rank || e.to == rank)
            .collect()
    }

    /// Send-start events only, in time order.
    pub fn sends(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.kind == TraceKind::SendStart)
    }

    /// Render an ASCII timeline of sender activity, one row per rank —
    /// the shape of Figure 5a. `S` marks a send slot, `R` a delivery.
    pub fn ascii_timeline(&self, p: u32, o: u64) -> String {
        let horizon = self
            .events
            .iter()
            .map(|e| e.time.steps() + o)
            .max()
            .unwrap_or(0) as usize;
        let mut rows = vec![vec![b'.'; horizon]; p as usize];
        for e in &self.events {
            match e.kind {
                TraceKind::SendStart => {
                    for dt in 0..o as usize {
                        let t = e.time.steps() as usize + dt;
                        if t < horizon {
                            rows[e.from as usize][t] = b'S';
                        }
                    }
                }
                TraceKind::Deliver => {
                    for dt in 0..o as usize {
                        // Delivery time marks the *end* of processing.
                        let t = (e.time.steps() as usize).saturating_sub(dt + 1);
                        if t < horizon {
                            rows[e.to as usize][t] = b'R';
                        }
                    }
                }
                _ => {}
            }
        }
        let mut out = String::new();
        for (r, row) in rows.iter().enumerate() {
            out.push_str(&format!("{r:>5} |"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, kind: TraceKind, from: Rank, to: Rank) -> TraceEvent {
        TraceEvent { time: Time::new(time), kind, from, to, payload: Payload::Tree }
    }

    #[test]
    fn filters_by_rank() {
        let trace = Trace {
            events: vec![
                ev(0, TraceKind::SendStart, 0, 1),
                ev(3, TraceKind::Deliver, 0, 1),
                ev(1, TraceKind::SendStart, 0, 2),
                ev(4, TraceKind::Deliver, 0, 2),
            ],
        };
        assert_eq!(trace.for_rank(1).len(), 2);
        assert_eq!(trace.for_rank(2).len(), 2);
        assert_eq!(trace.for_rank(0).len(), 4);
        assert_eq!(trace.sends().count(), 2);
    }

    #[test]
    fn ascii_timeline_marks_send_and_receive() {
        let trace = Trace {
            events: vec![
                ev(0, TraceKind::SendStart, 0, 1),
                ev(4, TraceKind::Deliver, 0, 1),
            ],
        };
        let art = trace.ascii_timeline(2, 1);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].contains('S'));
        assert!(lines[1].contains('R'));
    }

    #[test]
    fn display_mentions_the_essentials() {
        let e = ev(7, TraceKind::SendStart, 3, 9);
        let s = e.to_string();
        assert!(s.contains("t=    7"), "{s}");
        assert!(s.contains("send"), "{s}");
        assert!(s.contains("3 → 9"), "{s}");
        assert!(s.contains("Tree"), "{s}");
    }
}
