//! Optional event traces (Figure 5-style timelines).
//!
//! Tracing is off by default — at `P = 2¹⁹` a trace would dwarf the
//! simulation itself — and is enabled per run for debugging, the
//! `protocol_trace` example and timeline tests.

use core::fmt;

use ct_core::protocol::Payload;
use ct_logp::{Rank, Time};

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// `from` started transmitting to `to` (sender port busy `o`).
    SendStart,
    /// The message reached `to`'s receive port (after `o + L`).
    Arrive,
    /// `to` finished processing the message (`on_message` ran).
    Deliver,
    /// The message was dropped because `to` is dead.
    DropDead,
}

/// One timeline entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub time: Time,
    /// Event class.
    pub kind: TraceKind,
    /// Sending rank.
    pub from: Rank,
    /// Receiving rank.
    pub to: Rank,
    /// Message kind.
    pub payload: Payload,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            TraceKind::SendStart => "send ",
            TraceKind::Arrive => "arrive",
            TraceKind::Deliver => "deliver",
            TraceKind::DropDead => "drop",
        };
        write!(
            f,
            "t={:>5} {kind:<8} {:>4} → {:<4} {:?}",
            self.time, self.from, self.to, self.payload
        )
    }
}

/// A recorded run timeline, in event order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All recorded events.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Project an observability event stream down to the classic
    /// message-level trace: `send`/`arrive`/`deliver`/`drop` events are
    /// kept; coloring and phase-span events are dropped.
    pub fn from_events(events: &[ct_obs::Event]) -> Trace {
        use ct_obs::EventKind as Ek;
        let mut trace = Trace::default();
        for e in events {
            let (kind, from, to, payload) = match e.kind {
                Ek::SendStart { from, to, payload } => (TraceKind::SendStart, from, to, payload),
                Ek::Arrive { from, to, payload } => (TraceKind::Arrive, from, to, payload),
                Ek::Deliver { from, to, payload } => (TraceKind::Deliver, from, to, payload),
                Ek::DropDead { from, to, payload } => (TraceKind::DropDead, from, to, payload),
                Ek::Colored { .. } | Ek::PhaseBegin { .. } | Ek::PhaseEnd { .. } => continue,
            };
            trace.events.push(TraceEvent {
                time: e.time,
                kind,
                from,
                to,
                payload,
            });
        }
        trace
    }

    /// Events involving `rank` (as sender or receiver).
    pub fn for_rank(&self, rank: Rank) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.from == rank || e.to == rank)
            .collect()
    }

    /// Send-start events only, in time order.
    pub fn sends(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.kind == TraceKind::SendStart)
    }

    /// Render an ASCII timeline of sender activity, one row per rank —
    /// the shape of Figure 5a. `S` marks a send slot, `R` a delivery.
    pub fn ascii_timeline(&self, p: u32, o: u64) -> String {
        self.ascii_timeline_ranks(p, o, None)
    }

    /// [`Trace::ascii_timeline`] restricted to the given rows. The
    /// horizon and all marks are computed from the full trace — the
    /// filter hides rows, it does not re-time them — so the visible
    /// rows line up column-for-column with the unfiltered rendering.
    pub fn ascii_timeline_ranks(&self, p: u32, o: u64, ranks: Option<&[Rank]>) -> String {
        let horizon = self
            .events
            .iter()
            .map(|e| e.time.steps() + o)
            .max()
            .unwrap_or(0) as usize;
        let mut rows = vec![vec![b'.'; horizon]; p as usize];
        for e in &self.events {
            match e.kind {
                TraceKind::SendStart => {
                    for dt in 0..o as usize {
                        let t = e.time.steps() as usize + dt;
                        if t < horizon {
                            rows[e.from as usize][t] = b'S';
                        }
                    }
                }
                TraceKind::Deliver => {
                    // Delivery time marks the *end* of processing: the
                    // receive slot occupies [t − o, t). Slots that would
                    // precede t = 0 are skipped, not clamped — clamping
                    // would pile every early mark onto column 0 and
                    // overwrite same-rank S cells there.
                    for dt in 0..o as usize {
                        let steps = e.time.steps() as usize;
                        if steps < dt + 1 {
                            continue;
                        }
                        let t = steps - (dt + 1);
                        if t < horizon {
                            rows[e.to as usize][t] = b'R';
                        }
                    }
                }
                _ => {}
            }
        }
        let mut out = String::new();
        for (r, row) in rows.iter().enumerate() {
            if let Some(keep) = ranks {
                if !keep.contains(&(r as Rank)) {
                    continue;
                }
            }
            out.push_str(&format!("{r:>5} |"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, kind: TraceKind, from: Rank, to: Rank) -> TraceEvent {
        TraceEvent {
            time: Time::new(time),
            kind,
            from,
            to,
            payload: Payload::Tree,
        }
    }

    #[test]
    fn filters_by_rank() {
        let trace = Trace {
            events: vec![
                ev(0, TraceKind::SendStart, 0, 1),
                ev(3, TraceKind::Deliver, 0, 1),
                ev(1, TraceKind::SendStart, 0, 2),
                ev(4, TraceKind::Deliver, 0, 2),
            ],
        };
        assert_eq!(trace.for_rank(1).len(), 2);
        assert_eq!(trace.for_rank(2).len(), 2);
        assert_eq!(trace.for_rank(0).len(), 4);
        assert_eq!(trace.sends().count(), 2);
    }

    #[test]
    fn ascii_timeline_marks_send_and_receive() {
        let trace = Trace {
            events: vec![
                ev(0, TraceKind::SendStart, 0, 1),
                ev(4, TraceKind::Deliver, 0, 1),
            ],
        };
        let art = trace.ascii_timeline(2, 1);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].contains('S'));
        assert!(lines[1].contains('R'));
    }

    #[test]
    fn ascii_timeline_golden_string() {
        // A delivery whose receive slot would precede t = 0 must be
        // skipped, not clamped onto column 0 — clamping used to
        // overwrite the S of a send happening there.
        let trace = Trace {
            events: vec![
                ev(0, TraceKind::SendStart, 0, 1),
                ev(0, TraceKind::Deliver, 1, 0), // slot [−1, 0): off-canvas
                ev(3, TraceKind::Deliver, 0, 1), // slot [2, 3)
            ],
        };
        assert_eq!(trace.ascii_timeline(2, 1), "    0 |S...\n    1 |..R.\n");
    }

    #[test]
    fn ascii_timeline_wide_overhead_skips_precanvas_slots() {
        // o = 2: a delivery at t = 1 occupies [−1, 1); only the slot at
        // column 0 exists. The old clamp marked column 0 twice (harmless)
        // but also invented marks for deliveries at t = 0.
        let trace = Trace {
            events: vec![
                ev(1, TraceKind::Deliver, 1, 0),
                ev(0, TraceKind::Deliver, 1, 1),
            ],
        };
        assert_eq!(trace.ascii_timeline(2, 2), "    0 |R..\n    1 |...\n");
    }

    #[test]
    fn ascii_timeline_ranks_hides_rows_without_retiming() {
        let trace = Trace {
            events: vec![
                ev(0, TraceKind::SendStart, 0, 1),
                ev(3, TraceKind::Deliver, 0, 1),
            ],
        };
        let full = trace.ascii_timeline(3, 1);
        let only1 = trace.ascii_timeline_ranks(3, 1, Some(&[1]));
        // The filtered view is exactly the matching row of the full view.
        let row1 = full.lines().nth(1).unwrap();
        assert_eq!(only1, format!("{row1}\n"));
    }

    #[test]
    fn from_events_keeps_message_events_only() {
        use ct_obs::{Event, EventKind};
        let events = vec![
            Event::sim(
                Time::ZERO,
                EventKind::PhaseBegin {
                    name: "broadcast".into(),
                },
            ),
            Event::sim(
                Time::ZERO,
                EventKind::SendStart {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            Event::sim(
                Time::new(4),
                EventKind::Colored {
                    rank: 1,
                    via: ct_core::protocol::ColoredVia::Dissemination,
                },
            ),
            Event::sim(
                Time::new(4),
                EventKind::Deliver {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
        ];
        let trace = Trace::from_events(&events);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].kind, TraceKind::SendStart);
        assert_eq!(trace.events[1].kind, TraceKind::Deliver);
    }

    #[test]
    fn display_mentions_the_essentials() {
        let e = ev(7, TraceKind::SendStart, 3, 9);
        let s = e.to_string();
        assert!(s.contains("t=    7"), "{s}");
        assert!(s.contains("send"), "{s}");
        assert!(s.contains("3 → 9"), "{s}");
        assert!(s.contains("Tree"), "{s}");
    }
}
