//! Fail-stop fault injection (§2.1, §4.3).
//!
//! A failed process neither sends nor processes messages; senders get no
//! feedback. Failures are decided *before* the broadcast (during one
//! execution every process is either dead or alive) and the root is
//! always alive because it initiates the operation.
//!
//! The paper's resilience experiments pick a fraction of processes
//! (0.01%–4%) uniformly at random; adversarial placements (the root's
//! children, whole subtrees) are provided for testing worst cases.

use core::fmt;

use ct_logp::Rank;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

/// Fixed block size for [`FaultPlan::random_count_chunked`]. Part of
/// the sampling definition (the stratification grid), not a tuning
/// knob: changing it changes which plans a seed produces.
pub const CHUNK_RANKS: u32 = 1 << 16;

/// Apportion `n` faults to the fixed chunk grid by exact proportion of
/// each chunk's available (non-protected) ranks, largest-remainder
/// rounding, ties to lower chunk index. Pure integer arithmetic.
fn chunk_quotas(p: u32, n: u32, available: u32) -> Vec<u32> {
    let chunks = p.div_ceil(CHUNK_RANKS) as usize;
    let avail_of = |idx: usize| -> u64 {
        let lo = idx as u64 * u64::from(CHUNK_RANKS);
        let hi = (lo + u64::from(CHUNK_RANKS)).min(u64::from(p));
        // Chunk 0 holds the protected root.
        hi - lo - u64::from(idx == 0)
    };
    let mut quotas = vec![0u32; chunks];
    let mut remainders: Vec<(u64, usize)> = Vec::with_capacity(chunks);
    let mut assigned = 0u32;
    for (idx, q) in quotas.iter_mut().enumerate() {
        let share = u64::from(n) * avail_of(idx);
        *q = (share / u64::from(available)) as u32;
        assigned += *q;
        remainders.push((share % u64::from(available), idx));
    }
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = n - assigned;
    for (_, idx) in remainders {
        if leftover == 0 {
            break;
        }
        if u64::from(quotas[idx]) < avail_of(idx) {
            quotas[idx] += 1;
            leftover -= 1;
        }
    }
    debug_assert_eq!(leftover, 0, "chunk capacity must absorb all faults");
    quotas
}

/// Sample `quota` distinct failures into one chunk's slice of the mask.
/// Chunk 0 protects rank 0. Seeded from `(seed, idx)` only.
fn fill_chunk(idx: usize, chunk: &mut [bool], quota: u32, seed: u64) {
    if quota == 0 {
        return;
    }
    let derived = seed.wrapping_add((idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut rng = StdRng::seed_from_u64(derived);
    let skip_root = usize::from(idx == 0);
    let avail = chunk.len() - skip_root;
    for j in sample(&mut rng, avail, quota as usize) {
        chunk[j + skip_root] = true;
    }
}

/// How many threads to fill chunks with: 1 for small plans, else
/// `CT_THREADS` / hardware parallelism capped by the chunk count. Only
/// affects wall time, never the plan.
fn fill_threads(chunks: usize) -> usize {
    if chunks < 4 {
        return 1;
    }
    let hw = std::env::var("CT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    hw.clamp(1, chunks)
}

/// Which processes are dead for one broadcast execution.
///
/// Internally double-booked: the `Vec<bool>` mask serves the analysis
/// APIs ([`FaultPlan::mask`]), while a packed bit vector (64 ranks per
/// word, 128 KiB at `P = 2²⁰` against the mask's 1 MiB) serves the
/// engine's per-arrival [`FaultPlan::is_failed`] checks without
/// thrashing the caches the event loop needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    failed: Vec<bool>,
    /// `failed` packed one bit per rank; kept in sync by [`Self::seal`].
    words: Vec<u64>,
    count: u32,
}

/// Errors constructing a fault plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// Rank 0 initiates the broadcast and must stay alive (§2.1).
    RootMustLive,
    /// A rank outside `0..P` was named.
    RankOutOfRange(Rank),
    /// More failures requested than non-root processes exist.
    TooManyFaults {
        /// Requested number of failures.
        requested: u32,
        /// Non-root processes available to fail.
        available: u32,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::RootMustLive => write!(f, "rank 0 (the root) cannot fail"),
            FaultError::RankOutOfRange(r) => write!(f, "rank {r} out of range"),
            FaultError::TooManyFaults {
                requested,
                available,
            } => {
                write!(
                    f,
                    "{requested} faults requested but only {available} non-root processes"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

impl FaultPlan {
    /// Finalize a mask into a plan, deriving the packed bit vector.
    fn seal(failed: Vec<bool>, count: u32) -> FaultPlan {
        let mut words = vec![0u64; failed.len().div_ceil(64)];
        for (r, &f) in failed.iter().enumerate() {
            if f {
                words[r / 64] |= 1u64 << (r % 64);
            }
        }
        FaultPlan {
            failed,
            words,
            count,
        }
    }

    /// No failures.
    pub fn none(p: u32) -> FaultPlan {
        FaultPlan::seal(vec![false; p as usize], 0)
    }

    /// Fail exactly the listed ranks; the broadcast root (rank 0) is
    /// protected. For non-zero roots see
    /// [`FaultPlan::from_ranks_protecting`].
    pub fn from_ranks(p: u32, ranks: &[Rank]) -> Result<FaultPlan, FaultError> {
        Self::from_ranks_protecting(p, ranks, 0)
    }

    /// Fail exactly the listed ranks, rejecting the protected rank (the
    /// broadcast root, which must be alive because it initiates the
    /// operation, §2.1).
    pub fn from_ranks_protecting(
        p: u32,
        ranks: &[Rank],
        protected: Rank,
    ) -> Result<FaultPlan, FaultError> {
        assert!(protected < p, "protected rank out of range");
        let mut failed = vec![false; p as usize];
        let mut count = 0;
        for &r in ranks {
            if r == protected {
                return Err(FaultError::RootMustLive);
            }
            if r >= p {
                return Err(FaultError::RankOutOfRange(r));
            }
            if !failed[r as usize] {
                failed[r as usize] = true;
                count += 1;
            }
        }
        Ok(FaultPlan::seal(failed, count))
    }

    /// Fail `n` distinct non-root processes chosen uniformly at random.
    pub fn random_count(p: u32, n: u32, seed: u64) -> Result<FaultPlan, FaultError> {
        Self::random_count_protecting(p, n, seed, 0)
    }

    /// Fail `n` distinct processes chosen uniformly at random among all
    /// ranks except `protected`.
    pub fn random_count_protecting(
        p: u32,
        n: u32,
        seed: u64,
        protected: Rank,
    ) -> Result<FaultPlan, FaultError> {
        assert!(protected < p, "protected rank out of range");
        let available = p.saturating_sub(1);
        if n > available {
            return Err(FaultError::TooManyFaults {
                requested: n,
                available,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut failed = vec![false; p as usize];
        // Sample from 0..p-1, skipping over the protected rank.
        for idx in sample(&mut rng, available as usize, n as usize) {
            let r = if (idx as u32) < protected {
                idx as u32
            } else {
                idx as u32 + 1
            };
            failed[r as usize] = true;
        }
        Ok(FaultPlan::seal(failed, n))
    }

    /// Correlated failures (§2.1): processes are grouped into aligned
    /// "nodes" of `node_size` consecutive ranks (the multi-core nodes of
    /// a real cluster) and `n_nodes` whole nodes crash together, chosen
    /// uniformly among the nodes not containing `protected`.
    pub fn node_blocks(
        p: u32,
        node_size: u32,
        n_nodes: u32,
        seed: u64,
        protected: Rank,
    ) -> Result<FaultPlan, FaultError> {
        assert!(node_size >= 1 && protected < p);
        let total_nodes = p.div_ceil(node_size);
        let protected_node = protected / node_size;
        let available = total_nodes.saturating_sub(1);
        if n_nodes > available {
            return Err(FaultError::TooManyFaults {
                requested: n_nodes,
                available,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut failed = vec![false; p as usize];
        let mut count = 0;
        for idx in sample(&mut rng, available as usize, n_nodes as usize) {
            let node = if (idx as u32) < protected_node {
                idx as u32
            } else {
                idx as u32 + 1
            };
            let start = node * node_size;
            for r in start..(start + node_size).min(p) {
                failed[r as usize] = true;
                count += 1;
            }
        }
        Ok(FaultPlan::seal(failed, count))
    }

    /// Fail a fraction `rate` (e.g. `0.01` = 1%) of all `p` processes,
    /// rounded to the nearest whole number of processes, never the root.
    pub fn random_rate(p: u32, rate: f64, seed: u64) -> Result<FaultPlan, FaultError> {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let n = ((p as f64 * rate).round() as u32).min(p.saturating_sub(1));
        FaultPlan::random_count(p, n, seed)
    }

    /// Like [`FaultPlan::random_count`], but built chunk-parallel for
    /// million-rank plans: ranks are split into fixed [`CHUNK_RANKS`]
    /// blocks, the `n` faults are apportioned to blocks by exact
    /// proportion (largest-remainder rounding — stratified uniform
    /// sampling), and each block samples its quota without replacement
    /// from an independent per-block RNG. Every step is pure integer
    /// arithmetic over a *fixed* chunk grid, so the plan depends only on
    /// `(p, n, seed)` — never on how many threads filled it.
    ///
    /// This is a different (stratified) draw than the sequential
    /// [`FaultPlan::random_count`], which existing seeded experiments
    /// pin; use this constructor for new large-`P` studies where plan
    /// construction would otherwise dominate a repetition.
    pub fn random_count_chunked(p: u32, n: u32, seed: u64) -> Result<FaultPlan, FaultError> {
        let available = p.saturating_sub(1);
        if n > available {
            return Err(FaultError::TooManyFaults {
                requested: n,
                available,
            });
        }
        let quotas = chunk_quotas(p, n, available);
        let mut failed = vec![false; p as usize];
        // Fill chunks in parallel over disjoint sub-slices. Each chunk's
        // RNG is seeded from (seed, chunk index) alone, so the result is
        // identical whether 1 or 16 threads do the filling.
        let chunks: Vec<(usize, &mut [bool])> = failed
            .chunks_mut(CHUNK_RANKS as usize)
            .enumerate()
            .collect();
        let threads = fill_threads(chunks.len());
        if threads <= 1 {
            for (idx, chunk) in chunks {
                fill_chunk(idx, chunk, quotas[idx], seed);
            }
        } else {
            // Interleave chunk ownership round-robin; ownership affects
            // only *who* fills a chunk, not its contents.
            std::thread::scope(|scope| {
                let mut lanes: Vec<Vec<(usize, &mut [bool])>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (i, item) in chunks.into_iter().enumerate() {
                    lanes[i % threads].push(item);
                }
                for lane in lanes {
                    let quotas = &quotas;
                    scope.spawn(move || {
                        for (idx, chunk) in lane {
                            fill_chunk(idx, chunk, quotas[idx], seed);
                        }
                    });
                }
            });
        }
        Ok(FaultPlan::seal(failed, n))
    }

    /// Number of processes.
    pub fn p(&self) -> u32 {
        self.failed.len() as u32
    }

    /// Number of failed processes.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Is `r` dead? Reads the packed bit vector — the engine calls this
    /// once per arrival, and bits keep the lookup cache-resident where
    /// the byte mask would not be at large `P`.
    #[inline]
    pub fn is_failed(&self, r: Rank) -> bool {
        self.words[r as usize / 64] & (1u64 << (r as usize % 64)) != 0
    }

    /// The full mask, indexable by rank.
    pub fn mask(&self) -> &[bool] {
        &self.failed
    }

    /// Iterator over failed ranks in ascending order.
    pub fn failed_ranks(&self) -> impl Iterator<Item = Rank> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter_map(|(r, &f)| f.then_some(r as Rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_has_no_failures() {
        let plan = FaultPlan::none(16);
        assert_eq!(plan.count(), 0);
        assert_eq!(plan.failed_ranks().count(), 0);
        assert!(!plan.is_failed(3));
    }

    #[test]
    fn from_ranks_rejects_root_and_out_of_range() {
        assert_eq!(
            FaultPlan::from_ranks(8, &[0]),
            Err(FaultError::RootMustLive)
        );
        assert_eq!(
            FaultPlan::from_ranks(8, &[9]),
            Err(FaultError::RankOutOfRange(9))
        );
    }

    #[test]
    fn from_ranks_dedupes() {
        let plan = FaultPlan::from_ranks(8, &[3, 3, 5]).unwrap();
        assert_eq!(plan.count(), 2);
        assert_eq!(plan.failed_ranks().collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn random_count_is_exact_and_rootless() {
        for seed in 0..20u64 {
            let plan = FaultPlan::random_count(100, 13, seed).unwrap();
            assert_eq!(plan.count(), 13);
            assert_eq!(plan.failed_ranks().count(), 13);
            assert!(!plan.is_failed(0));
        }
    }

    #[test]
    fn random_count_is_reproducible() {
        let a = FaultPlan::random_count(1000, 50, 42).unwrap();
        let b = FaultPlan::random_count(1000, 50, 42).unwrap();
        assert_eq!(a, b);
        let c = FaultPlan::random_count(1000, 50, 43).unwrap();
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn random_count_rejects_excess() {
        assert_eq!(
            FaultPlan::random_count(4, 4, 0),
            Err(FaultError::TooManyFaults {
                requested: 4,
                available: 3
            })
        );
        assert!(FaultPlan::random_count(4, 3, 0).is_ok());
    }

    #[test]
    fn random_rate_rounds_to_count() {
        // 1% of 64Ki = 655.36 → 655.
        let plan = FaultPlan::random_rate(1 << 16, 0.01, 7).unwrap();
        assert_eq!(plan.count(), 655);
        // 0% → none.
        assert_eq!(FaultPlan::random_rate(100, 0.0, 7).unwrap().count(), 0);
    }

    #[test]
    fn node_blocks_fail_whole_aligned_nodes() {
        let plan = FaultPlan::node_blocks(64, 4, 3, 9, 0).unwrap();
        assert_eq!(plan.count(), 12);
        assert!(!plan.is_failed(0), "the root's node is protected");
        assert!(!plan.is_failed(1) && !plan.is_failed(2) && !plan.is_failed(3));
        // Every failed rank's whole node is failed.
        for r in plan.failed_ranks() {
            let start = (r / 4) * 4;
            for x in start..start + 4 {
                assert!(plan.is_failed(x), "partial node at {r}");
            }
        }
    }

    #[test]
    fn node_blocks_respects_protected_rank() {
        let plan = FaultPlan::node_blocks(32, 8, 3, 2, 20).unwrap();
        // Node 2 (ranks 16..24) holds the protected rank 20.
        for r in 16..24 {
            assert!(!plan.is_failed(r));
        }
        assert_eq!(plan.count(), 24);
    }

    #[test]
    fn node_blocks_rejects_excess_nodes() {
        assert_eq!(
            FaultPlan::node_blocks(16, 4, 4, 0, 0),
            Err(FaultError::TooManyFaults {
                requested: 4,
                available: 3
            })
        );
    }

    #[test]
    fn node_blocks_handles_ragged_last_node() {
        // P = 10, node size 4 → nodes {0..4}, {4..8}, {8..10}.
        let plan = FaultPlan::node_blocks(10, 4, 2, 1, 0).unwrap();
        assert_eq!(plan.count(), 6); // nodes 1 and 2: 4 + 2 ranks
        assert!(plan.is_failed(9));
    }

    #[test]
    fn rate_one_spares_only_the_root() {
        let plan = FaultPlan::random_rate(10, 1.0, 3).unwrap();
        assert_eq!(plan.count(), 9);
        assert!(!plan.is_failed(0));
    }

    #[test]
    fn is_failed_matches_mask_exactly() {
        let plan = FaultPlan::random_count(3000, 137, 11).unwrap();
        for r in 0..3000u32 {
            assert_eq!(plan.is_failed(r), plan.mask()[r as usize], "rank {r}");
        }
    }

    #[test]
    fn chunked_is_exact_rootless_and_reproducible() {
        // Spans multiple chunks: P = 3 × CHUNK_RANKS + ragged tail.
        let p = 3 * CHUNK_RANKS + 1234;
        let n = p / 100;
        let a = FaultPlan::random_count_chunked(p, n, 42).unwrap();
        assert_eq!(a.count(), n);
        assert_eq!(a.failed_ranks().count() as u32, n);
        assert!(!a.is_failed(0));
        let b = FaultPlan::random_count_chunked(p, n, 42).unwrap();
        assert_eq!(a, b);
        let c = FaultPlan::random_count_chunked(p, n, 43).unwrap();
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn chunked_is_thread_count_independent() {
        // The fixed chunk grid + per-chunk seeding make the plan a pure
        // function of (p, n, seed); CT_THREADS only changes who fills.
        let p = 4 * CHUNK_RANKS;
        let single: Vec<FaultPlan> = (0..3)
            .map(|s| FaultPlan::random_count_chunked(p, 999, s).unwrap())
            .collect();
        // Re-derive each chunk sequentially from the quotas and compare.
        for (s, plan) in single.iter().enumerate() {
            let quotas = chunk_quotas(p, 999, p - 1);
            let mut failed = vec![false; p as usize];
            for (idx, chunk) in failed.chunks_mut(CHUNK_RANKS as usize).enumerate() {
                fill_chunk(idx, chunk, quotas[idx], s as u64);
            }
            assert_eq!(plan.mask(), failed.as_slice(), "seed {s}");
        }
    }

    #[test]
    fn chunked_spreads_faults_across_every_chunk() {
        let p = 4 * CHUNK_RANKS;
        let plan = FaultPlan::random_count_chunked(p, 4000, 7).unwrap();
        for c in 0..4u32 {
            let lo = c * CHUNK_RANKS;
            let in_chunk = plan
                .failed_ranks()
                .filter(|&r| r >= lo && r < lo + CHUNK_RANKS)
                .count();
            assert!(
                (999..=1001).contains(&in_chunk),
                "chunk {c} got {in_chunk} faults; stratification must be proportional"
            );
        }
    }

    #[test]
    fn chunked_handles_tiny_and_full_plans() {
        assert_eq!(FaultPlan::random_count_chunked(8, 0, 1).unwrap().count(), 0);
        let full = FaultPlan::random_count_chunked(8, 7, 1).unwrap();
        assert_eq!(full.count(), 7);
        assert!(!full.is_failed(0));
        assert_eq!(
            FaultPlan::random_count_chunked(8, 8, 1),
            Err(FaultError::TooManyFaults {
                requested: 8,
                available: 7
            })
        );
    }
}
