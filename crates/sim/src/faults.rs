//! Fail-stop fault injection (§2.1, §4.3).
//!
//! A failed process neither sends nor processes messages; senders get no
//! feedback. Failures are decided *before* the broadcast (during one
//! execution every process is either dead or alive) and the root is
//! always alive because it initiates the operation.
//!
//! The paper's resilience experiments pick a fraction of processes
//! (0.01%–4%) uniformly at random; adversarial placements (the root's
//! children, whole subtrees) are provided for testing worst cases.

use core::fmt;

use ct_logp::Rank;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

/// Which processes are dead for one broadcast execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    failed: Vec<bool>,
    count: u32,
}

/// Errors constructing a fault plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// Rank 0 initiates the broadcast and must stay alive (§2.1).
    RootMustLive,
    /// A rank outside `0..P` was named.
    RankOutOfRange(Rank),
    /// More failures requested than non-root processes exist.
    TooManyFaults {
        /// Requested number of failures.
        requested: u32,
        /// Non-root processes available to fail.
        available: u32,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::RootMustLive => write!(f, "rank 0 (the root) cannot fail"),
            FaultError::RankOutOfRange(r) => write!(f, "rank {r} out of range"),
            FaultError::TooManyFaults {
                requested,
                available,
            } => {
                write!(
                    f,
                    "{requested} faults requested but only {available} non-root processes"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

impl FaultPlan {
    /// No failures.
    pub fn none(p: u32) -> FaultPlan {
        FaultPlan {
            failed: vec![false; p as usize],
            count: 0,
        }
    }

    /// Fail exactly the listed ranks; the broadcast root (rank 0) is
    /// protected. For non-zero roots see
    /// [`FaultPlan::from_ranks_protecting`].
    pub fn from_ranks(p: u32, ranks: &[Rank]) -> Result<FaultPlan, FaultError> {
        Self::from_ranks_protecting(p, ranks, 0)
    }

    /// Fail exactly the listed ranks, rejecting the protected rank (the
    /// broadcast root, which must be alive because it initiates the
    /// operation, §2.1).
    pub fn from_ranks_protecting(
        p: u32,
        ranks: &[Rank],
        protected: Rank,
    ) -> Result<FaultPlan, FaultError> {
        assert!(protected < p, "protected rank out of range");
        let mut failed = vec![false; p as usize];
        let mut count = 0;
        for &r in ranks {
            if r == protected {
                return Err(FaultError::RootMustLive);
            }
            if r >= p {
                return Err(FaultError::RankOutOfRange(r));
            }
            if !failed[r as usize] {
                failed[r as usize] = true;
                count += 1;
            }
        }
        Ok(FaultPlan { failed, count })
    }

    /// Fail `n` distinct non-root processes chosen uniformly at random.
    pub fn random_count(p: u32, n: u32, seed: u64) -> Result<FaultPlan, FaultError> {
        Self::random_count_protecting(p, n, seed, 0)
    }

    /// Fail `n` distinct processes chosen uniformly at random among all
    /// ranks except `protected`.
    pub fn random_count_protecting(
        p: u32,
        n: u32,
        seed: u64,
        protected: Rank,
    ) -> Result<FaultPlan, FaultError> {
        assert!(protected < p, "protected rank out of range");
        let available = p.saturating_sub(1);
        if n > available {
            return Err(FaultError::TooManyFaults {
                requested: n,
                available,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut failed = vec![false; p as usize];
        // Sample from 0..p-1, skipping over the protected rank.
        for idx in sample(&mut rng, available as usize, n as usize) {
            let r = if (idx as u32) < protected {
                idx as u32
            } else {
                idx as u32 + 1
            };
            failed[r as usize] = true;
        }
        Ok(FaultPlan { failed, count: n })
    }

    /// Correlated failures (§2.1): processes are grouped into aligned
    /// "nodes" of `node_size` consecutive ranks (the multi-core nodes of
    /// a real cluster) and `n_nodes` whole nodes crash together, chosen
    /// uniformly among the nodes not containing `protected`.
    pub fn node_blocks(
        p: u32,
        node_size: u32,
        n_nodes: u32,
        seed: u64,
        protected: Rank,
    ) -> Result<FaultPlan, FaultError> {
        assert!(node_size >= 1 && protected < p);
        let total_nodes = p.div_ceil(node_size);
        let protected_node = protected / node_size;
        let available = total_nodes.saturating_sub(1);
        if n_nodes > available {
            return Err(FaultError::TooManyFaults {
                requested: n_nodes,
                available,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut failed = vec![false; p as usize];
        let mut count = 0;
        for idx in sample(&mut rng, available as usize, n_nodes as usize) {
            let node = if (idx as u32) < protected_node {
                idx as u32
            } else {
                idx as u32 + 1
            };
            let start = node * node_size;
            for r in start..(start + node_size).min(p) {
                failed[r as usize] = true;
                count += 1;
            }
        }
        Ok(FaultPlan { failed, count })
    }

    /// Fail a fraction `rate` (e.g. `0.01` = 1%) of all `p` processes,
    /// rounded to the nearest whole number of processes, never the root.
    pub fn random_rate(p: u32, rate: f64, seed: u64) -> Result<FaultPlan, FaultError> {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let n = ((p as f64 * rate).round() as u32).min(p.saturating_sub(1));
        FaultPlan::random_count(p, n, seed)
    }

    /// Number of processes.
    pub fn p(&self) -> u32 {
        self.failed.len() as u32
    }

    /// Number of failed processes.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Is `r` dead?
    #[inline]
    pub fn is_failed(&self, r: Rank) -> bool {
        self.failed[r as usize]
    }

    /// The full mask, indexable by rank.
    pub fn mask(&self) -> &[bool] {
        &self.failed
    }

    /// Iterator over failed ranks in ascending order.
    pub fn failed_ranks(&self) -> impl Iterator<Item = Rank> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter_map(|(r, &f)| f.then_some(r as Rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_has_no_failures() {
        let plan = FaultPlan::none(16);
        assert_eq!(plan.count(), 0);
        assert_eq!(plan.failed_ranks().count(), 0);
        assert!(!plan.is_failed(3));
    }

    #[test]
    fn from_ranks_rejects_root_and_out_of_range() {
        assert_eq!(
            FaultPlan::from_ranks(8, &[0]),
            Err(FaultError::RootMustLive)
        );
        assert_eq!(
            FaultPlan::from_ranks(8, &[9]),
            Err(FaultError::RankOutOfRange(9))
        );
    }

    #[test]
    fn from_ranks_dedupes() {
        let plan = FaultPlan::from_ranks(8, &[3, 3, 5]).unwrap();
        assert_eq!(plan.count(), 2);
        assert_eq!(plan.failed_ranks().collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn random_count_is_exact_and_rootless() {
        for seed in 0..20u64 {
            let plan = FaultPlan::random_count(100, 13, seed).unwrap();
            assert_eq!(plan.count(), 13);
            assert_eq!(plan.failed_ranks().count(), 13);
            assert!(!plan.is_failed(0));
        }
    }

    #[test]
    fn random_count_is_reproducible() {
        let a = FaultPlan::random_count(1000, 50, 42).unwrap();
        let b = FaultPlan::random_count(1000, 50, 42).unwrap();
        assert_eq!(a, b);
        let c = FaultPlan::random_count(1000, 50, 43).unwrap();
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn random_count_rejects_excess() {
        assert_eq!(
            FaultPlan::random_count(4, 4, 0),
            Err(FaultError::TooManyFaults {
                requested: 4,
                available: 3
            })
        );
        assert!(FaultPlan::random_count(4, 3, 0).is_ok());
    }

    #[test]
    fn random_rate_rounds_to_count() {
        // 1% of 64Ki = 655.36 → 655.
        let plan = FaultPlan::random_rate(1 << 16, 0.01, 7).unwrap();
        assert_eq!(plan.count(), 655);
        // 0% → none.
        assert_eq!(FaultPlan::random_rate(100, 0.0, 7).unwrap().count(), 0);
    }

    #[test]
    fn node_blocks_fail_whole_aligned_nodes() {
        let plan = FaultPlan::node_blocks(64, 4, 3, 9, 0).unwrap();
        assert_eq!(plan.count(), 12);
        assert!(!plan.is_failed(0), "the root's node is protected");
        assert!(!plan.is_failed(1) && !plan.is_failed(2) && !plan.is_failed(3));
        // Every failed rank's whole node is failed.
        for r in plan.failed_ranks() {
            let start = (r / 4) * 4;
            for x in start..start + 4 {
                assert!(plan.is_failed(x), "partial node at {r}");
            }
        }
    }

    #[test]
    fn node_blocks_respects_protected_rank() {
        let plan = FaultPlan::node_blocks(32, 8, 3, 2, 20).unwrap();
        // Node 2 (ranks 16..24) holds the protected rank 20.
        for r in 16..24 {
            assert!(!plan.is_failed(r));
        }
        assert_eq!(plan.count(), 24);
    }

    #[test]
    fn node_blocks_rejects_excess_nodes() {
        assert_eq!(
            FaultPlan::node_blocks(16, 4, 4, 0, 0),
            Err(FaultError::TooManyFaults {
                requested: 4,
                available: 3
            })
        );
    }

    #[test]
    fn node_blocks_handles_ragged_last_node() {
        // P = 10, node size 4 → nodes {0..4}, {4..8}, {8..10}.
        let plan = FaultPlan::node_blocks(10, 4, 2, 1, 0).unwrap();
        assert_eq!(plan.count(), 6); // nodes 1 and 2: 4 + 2 ranks
        assert!(plan.is_failed(9));
    }

    #[test]
    fn rate_one_spares_only_the_root() {
        let plan = FaultPlan::random_rate(10, 1.0, 3).unwrap();
        assert_eq!(plan.count(), 9);
        assert!(!plan.is_failed(0));
    }
}
