//! Reusable per-run storage.
//!
//! One simulated broadcast needs an event queue, per-rank receive
//! queues, a handful of per-rank scalar vectors and `P` boxed protocol
//! state machines. A campaign runs thousands of such broadcasts with
//! identical shapes, so rebuilding all of that per repetition is pure
//! allocator traffic. A [`RunArena`] owns the storage and survives
//! across [`Simulation::run_reusable`](crate::Simulation::run_reusable)
//! calls; every run begins by clearing it (keeping capacity) and ends
//! leaving it warm for the next.
//!
//! Determinism: the arena holds no state that outlives the clear — the
//! engine resets every field to exactly the values a fresh run starts
//! from, and the protocol machines are rebuilt each run (via
//! [`ProtocolFactory::build_into`](ct_core::protocol::ProtocolFactory::build_into),
//! which reuses the vector's backing storage but never the machines
//! themselves). A reused arena therefore produces bit-identical
//! outcomes and event streams; the golden-trace and driver-contract
//! suites pin this.

use std::collections::VecDeque;

use ct_core::protocol::{Payload, Process};
use ct_logp::{Rank, Time};

use crate::queue::EventQueue;

/// Reusable backing storage for simulation runs. Create once with
/// [`RunArena::new`] (allocation-free) and pass to any number of
/// [`Simulation::run_reusable`](crate::Simulation::run_reusable) calls;
/// runs of differing `P`, protocol or observability may share one
/// arena.
pub struct RunArena {
    pub(crate) queue: EventQueue,
    pub(crate) send_busy_until: Vec<Time>,
    pub(crate) done: Vec<bool>,
    pub(crate) recv_queue: Vec<VecDeque<(Rank, Payload)>>,
    pub(crate) recv_busy: Vec<bool>,
    pub(crate) colored_seen: Vec<bool>,
    pub(crate) procs: Vec<Box<dyn Process>>,
}

impl RunArena {
    /// An empty arena; storage grows on first use and is retained.
    pub fn new() -> RunArena {
        RunArena {
            queue: EventQueue::new(),
            send_busy_until: Vec::new(),
            done: Vec::new(),
            recv_queue: Vec::new(),
            recv_busy: Vec::new(),
            colored_seen: Vec::new(),
            procs: Vec::new(),
        }
    }

    /// Restore the fresh-run state for `p` ranks, retaining capacity.
    /// `observing` sizes the colored-event dedup vector (empty when the
    /// run is unobserved, exactly as a fresh run would allocate it).
    pub(crate) fn reset(&mut self, p: usize, observing: bool) {
        self.queue.reset();
        self.send_busy_until.clear();
        self.send_busy_until.resize(p, Time::ZERO);
        self.done.clear();
        self.done.resize(p, false);
        self.recv_busy.clear();
        self.recv_busy.resize(p, false);
        self.colored_seen.clear();
        self.colored_seen
            .resize(if observing { p } else { 0 }, false);
        // Keep each rank's deque (and its buffer) alive; only drop
        // surplus ranks when P shrinks.
        self.recv_queue.truncate(p);
        for q in self.recv_queue.iter_mut() {
            q.clear();
        }
        while self.recv_queue.len() < p {
            self.recv_queue.push(VecDeque::new());
        }
        // `procs` is intentionally untouched: the caller rebuilds it via
        // `ProtocolFactory::build_into`, reusing the vector itself.
    }
}

impl Default for RunArena {
    fn default() -> Self {
        RunArena::new()
    }
}
