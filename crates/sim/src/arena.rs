//! Reusable per-run storage.
//!
//! One simulated broadcast needs an event queue, per-rank receive
//! queues, a handful of per-rank scalar vectors and `P` boxed protocol
//! state machines. A campaign runs thousands of such broadcasts with
//! identical shapes, so rebuilding all of that per repetition is pure
//! allocator traffic. A [`RunArena`] owns the storage and survives
//! across [`Simulation::run_reusable`](crate::Simulation::run_reusable)
//! calls; every run begins by clearing it (keeping capacity) and ends
//! leaving it warm for the next.
//!
//! Determinism: the arena holds no state that outlives the clear — the
//! engine resets every field to exactly the values a fresh run starts
//! from, and the protocol machines are rebuilt each run (via
//! [`ProtocolFactory::build_into`](ct_core::protocol::ProtocolFactory::build_into),
//! which reuses the vector's backing storage but never the machines
//! themselves). A reused arena therefore produces bit-identical
//! outcomes and event streams; the golden-trace and driver-contract
//! suites pin this.

use ct_core::protocol::Process;
use ct_logp::Time;

use crate::bits::BitSet;
use crate::queue::EventQueue;
use crate::recvpool::RecvPool;

/// Reusable backing storage for simulation runs. Create once with
/// [`RunArena::new`] (allocation-free) and pass to any number of
/// [`Simulation::run_reusable`](crate::Simulation::run_reusable) calls;
/// runs of differing `P`, protocol or observability may share one
/// arena.
///
/// Per-rank state is struct-of-arrays: the three boolean flags are
/// packed [`BitSet`]s (one bit per rank) and the receive queues share
/// one pooled [`RecvPool`] instead of a `VecDeque` per rank, so the
/// whole arena stays cache-resident even at `P = 2²⁰`.
pub struct RunArena {
    pub(crate) queue: EventQueue,
    pub(crate) send_busy_until: Vec<Time>,
    pub(crate) done: BitSet,
    pub(crate) recv_queue: RecvPool,
    pub(crate) recv_busy: BitSet,
    pub(crate) colored_seen: BitSet,
    pub(crate) procs: Vec<Box<dyn Process>>,
}

impl RunArena {
    /// An empty arena; storage grows on first use and is retained.
    pub fn new() -> RunArena {
        RunArena {
            queue: EventQueue::new(),
            send_busy_until: Vec::new(),
            done: BitSet::new(),
            recv_queue: RecvPool::new(),
            recv_busy: BitSet::new(),
            colored_seen: BitSet::new(),
            procs: Vec::new(),
        }
    }

    /// Restore the fresh-run state for `p` ranks, retaining capacity.
    /// `observing` sizes the colored-event dedup bitset (empty when the
    /// run is unobserved, exactly as a fresh run would allocate it).
    pub(crate) fn reset(&mut self, p: usize, observing: bool) {
        self.queue.reset();
        self.send_busy_until.clear();
        self.send_busy_until.resize(p, Time::ZERO);
        self.done.clear_resize(p);
        self.recv_busy.clear_resize(p);
        self.colored_seen
            .clear_resize(if observing { p } else { 0 });
        self.recv_queue.reset(p);
        // `procs` is intentionally untouched: the caller rebuilds it via
        // `ProtocolFactory::build_into`, reusing the vector itself.
    }

    /// Bytes of reusable storage currently held (approximate; excludes
    /// the protocol machines). Steady under arena reuse — growth across
    /// repetitions is allocator churn the perf bench reports.
    pub fn footprint_bytes(&self) -> usize {
        self.send_busy_until.capacity() * std::mem::size_of::<Time>()
            + self.recv_queue.capacity() * 16
    }
}

impl Default for RunArena {
    fn default() -> Self {
        RunArena::new()
    }
}
