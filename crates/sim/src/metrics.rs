//! Per-run measurements.
//!
//! The paper's two headline metrics (§4): **coloring latency** — root's
//! first send to the last live process becoming colored — and
//! **quiescence latency** — root's first send until all broadcast
//! activity is over. Network load is measured in messages sent.

use ct_core::protocol::ColoredVia;
use ct_core::tree::ring;
use ct_logp::{Rank, Time};

/// Message totals by payload kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageCounts {
    /// Tree dissemination messages.
    pub tree: u64,
    /// Gossip dissemination messages.
    pub gossip: u64,
    /// Ring correction messages.
    pub correction: u64,
    /// Acknowledgments: the ack-tree wave, or failure-proof delivery
    /// confirmations.
    pub ack: u64,
}

impl MessageCounts {
    /// Total messages sent.
    pub fn total(&self) -> u64 {
        self.tree + self.gossip + self.correction + self.ack
    }
}

/// The result of one simulated broadcast.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Protocol label (from the factory).
    pub label: String,
    /// Process count.
    pub p: u32,
    /// Seed that drove this run.
    pub seed: u64,
    /// Per-rank coloring time (`None` = never colored).
    pub colored_at: Vec<Option<Time>>,
    /// How each rank was colored.
    pub colored_via: Vec<Option<ColoredVia>>,
    /// Fault mask used.
    pub failed: Vec<bool>,
    /// Message totals.
    pub messages: MessageCounts,
    /// Per-rank sent-message counts.
    pub sent_per_rank: Vec<u32>,
    /// Coloring latency: last live process colored (ZERO if none).
    pub coloring_latency: Time,
    /// Quiescence latency: last send completion or delivery processing.
    pub quiescence: Time,
    /// Number of simulator events processed.
    pub events: u64,
}

impl Outcome {
    /// Were all live processes colored (non-faulty liveness, §2.1)?
    pub fn all_live_colored(&self) -> bool {
        self.colored_at
            .iter()
            .zip(&self.failed)
            .all(|(c, &f)| f || c.is_some())
    }

    /// Live processes that were never colored.
    pub fn uncolored_live(&self) -> Vec<Rank> {
        self.colored_at
            .iter()
            .zip(&self.failed)
            .enumerate()
            .filter_map(|(r, (c, &f))| (!f && c.is_none()).then_some(r as Rank))
            .collect()
    }

    /// Average messages sent per process (all `P` processes, dead ones
    /// send nothing — matching Figure 6/9's y-axis).
    pub fn messages_per_process(&self) -> f64 {
        self.messages.total() as f64 / self.p as f64
    }

    /// Coloring mask (by *any* means) — input to gap analysis.
    pub fn colored_mask(&self) -> Vec<bool> {
        self.colored_at.iter().map(|c| c.is_some()).collect()
    }

    /// Ring gaps of the final coloring.
    pub fn gaps(&self) -> Vec<ring::Gap> {
        ring::gaps(&self.colored_mask())
    }

    /// Maximum gap of the final coloring (0 when every process,
    /// including dead ones, is "colored" — dead processes can never be,
    /// so with faults this is ≥ 1).
    pub fn max_gap(&self) -> u32 {
        ring::max_gap(&self.colored_mask())
    }

    /// Number of processes colored by correction rather than
    /// dissemination.
    pub fn correction_colored(&self) -> u32 {
        self.colored_via
            .iter()
            .filter(|v| matches!(v, Some(ColoredVia::Correction)))
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_stub() -> Outcome {
        Outcome {
            label: "test".into(),
            p: 4,
            seed: 0,
            colored_at: vec![
                Some(Time::ZERO),
                Some(Time::new(4)),
                None,
                Some(Time::new(6)),
            ],
            colored_via: vec![
                Some(ColoredVia::Root),
                Some(ColoredVia::Dissemination),
                None,
                Some(ColoredVia::Correction),
            ],
            failed: vec![false, false, true, false],
            messages: MessageCounts {
                tree: 3,
                gossip: 0,
                correction: 2,
                ack: 0,
            },
            sent_per_rank: vec![3, 2, 0, 0],
            coloring_latency: Time::new(6),
            quiescence: Time::new(9),
            events: 12,
        }
    }

    #[test]
    fn totals_and_averages() {
        let o = outcome_stub();
        assert_eq!(o.messages.total(), 5);
        assert!((o.messages_per_process() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn liveness_accounting_ignores_dead() {
        let o = outcome_stub();
        assert!(o.all_live_colored());
        assert!(o.uncolored_live().is_empty());
        let mut o2 = o.clone();
        o2.colored_at[3] = None;
        assert!(!o2.all_live_colored());
        assert_eq!(o2.uncolored_live(), vec![3]);
    }

    #[test]
    fn gap_analysis_counts_dead_as_uncolored() {
        let o = outcome_stub();
        assert_eq!(o.max_gap(), 1); // rank 2 (dead) is the only gap
        assert_eq!(o.gaps().len(), 1);
    }

    #[test]
    fn correction_colored_count() {
        assert_eq!(outcome_stub().correction_colored(), 1);
    }
}
