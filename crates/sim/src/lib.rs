//! # ct-sim — LogP discrete-event simulator
//!
//! The reproduction of the paper's custom simulator ("we developed a
//! discrete event simulator to study collective operations with
//! LogP-like models", §4; their flogsim). Unlike static simulators such
//! as LogGOPSim, it supports *dynamic* communication — gossip targets
//! and checked-correction probes depend on what arrived — and fault
//! injection (§5).
//!
//! Timing model (§2.2): a send decided at `t` occupies the sender port
//! for `o`; the message travels `L`; the receiver port processes
//! arrivals FIFO, `o` each, overlapping with its own sends; failed
//! processes silently drop arrivals and never send; the sender cannot
//! tell the difference. `g ≤ o` is ignored (small messages).
//!
//! Every run is driven by a seed and is bit-reproducible ("all our
//! simulations are fully reproducible as we keep the random generator
//! seed of every experiment", §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub(crate) mod bits;
pub mod engine;
pub mod faults;
pub mod metrics;
pub(crate) mod queue;
pub(crate) mod recvpool;
pub mod trace;

pub use arena::RunArena;
pub use engine::{SimError, Simulation, SimulationBuilder};
pub use faults::FaultPlan;
pub use metrics::{MessageCounts, Outcome};
pub use trace::{Trace, TraceEvent, TraceKind};
