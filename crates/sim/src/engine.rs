//! The discrete-event engine.
//!
//! Four event kinds drive a run:
//!
//! * `SenderFree(r)` — `r`'s sender port became free; poll the protocol.
//! * `Arrive(r, …)` — a message reached `r`'s receive port (queues FIFO).
//! * `RecvDone(r)` — `r` finished the `o`-long processing of the message
//!   at the head of its receive queue; `on_message` runs, then the
//!   sender is polled (sends overlap receives, §2.2).
//! * `Repoll(r)` — a protocol-requested `WaitUntil` expired.
//!
//! Ties are broken first by an event-class order (deliveries before
//! sender polls — see `EventKind::class` in the queue module), then by
//! insertion order, so a run is a pure function of `(P, LogP, faults,
//! seed, protocol)`. Events live in a calendar queue
//! ([`crate::queue`]); all per-run storage can be reused across runs
//! through a [`RunArena`].

use std::sync::Arc;

use ct_core::protocol::{BuildCtx, Payload, Process, ProtocolError, ProtocolFactory, SendPoll};
use ct_logp::{LogP, Rank, Time};
use ct_obs::event::phases;
use ct_obs::flight::{FlightKind, FlightRecorder, NO_RANK};
use ct_obs::health::HealthConfig;
use ct_obs::series::{Sampler, SeriesStore, DEFAULT_SERIES_CAP};
use ct_obs::telemetry::TelemetryHub;
use ct_obs::{Event as ObsEvent, EventKind as ObsEventKind, EventSink, NullSink, VecSink};

use crate::arena::RunArena;
use crate::faults::FaultPlan;
use crate::metrics::{MessageCounts, Outcome};
use crate::queue::{EventKind, EventQueue};
use crate::trace::Trace;

/// Default cap on processed events — a runaway-protocol backstop far
/// above any legitimate run (`≈ 100` events per process at `P = 2¹⁹`).
pub const DEFAULT_MAX_EVENTS: u64 = 2_000_000_000;

/// Errors from a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// The protocol factory failed.
    Protocol(ProtocolError),
    /// The event cap was exceeded (protocol likely livelocked).
    EventLimitExceeded {
        /// The configured cap.
        limit: u64,
    },
    /// A protocol returned `WaitUntil(t)` with `t` not in the future.
    NonAdvancingWait {
        /// The offending rank.
        rank: Rank,
        /// Current time.
        now: Time,
        /// Requested wake-up.
        at: Time,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Protocol(e) => write!(f, "protocol: {e}"),
            SimError::EventLimitExceeded { limit } => {
                write!(f, "event limit of {limit} exceeded")
            }
            SimError::NonAdvancingWait { rank, now, at } => {
                write!(f, "rank {rank} requested WaitUntil({at}) at time {now}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ProtocolError> for SimError {
    fn from(e: ProtocolError) -> Self {
        SimError::Protocol(e)
    }
}

/// A configured simulation; reusable across protocol factories.
///
/// ```
/// use ct_core::correction::CorrectionKind;
/// use ct_core::protocol::BroadcastSpec;
/// use ct_core::tree::TreeKind;
/// use ct_logp::LogP;
/// use ct_sim::{FaultPlan, Simulation};
///
/// let spec = BroadcastSpec::corrected_tree(
///     TreeKind::BINOMIAL,
///     CorrectionKind::OpportunisticOptimized { distance: 4 },
/// );
/// let outcome = Simulation::builder(64, LogP::PAPER)
///     .faults(FaultPlan::random_count(64, 3, 7)?)
///     .seed(7)
///     .build()
///     .run(&spec)?;
/// assert!(outcome.all_live_colored());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Simulation {
    p: u32,
    logp: LogP,
    faults: FaultPlan,
    seed: u64,
    record_trace: bool,
    max_events: u64,
    telemetry: Option<Arc<TelemetryHub>>,
    flight: Option<Arc<FlightRecorder>>,
    /// Continuous sampler over the attached hub (`Arc` because
    /// `Simulation` is `Clone`; the thread stops when the last clone
    /// drops).
    sampler: Option<Arc<Sampler>>,
}

/// Builder for [`Simulation`].
#[derive(Clone, Debug)]
pub struct SimulationBuilder {
    p: u32,
    logp: LogP,
    faults: Option<FaultPlan>,
    seed: u64,
    record_trace: bool,
    max_events: u64,
    telemetry: Option<Arc<TelemetryHub>>,
    flight: Option<Arc<FlightRecorder>>,
    sample: Option<std::time::Duration>,
}

impl Simulation {
    /// Start configuring a simulation of `p` processes.
    pub fn builder(p: u32, logp: LogP) -> SimulationBuilder {
        SimulationBuilder {
            p,
            logp,
            faults: None,
            seed: 0,
            record_trace: false,
            max_events: DEFAULT_MAX_EVENTS,
            telemetry: None,
            flight: None,
            sample: None,
        }
    }

    /// The continuous sampler's shared store ([`SimulationBuilder::sample`]);
    /// `None` unless both `telemetry` and `sample` were configured.
    pub fn series(&self) -> Option<Arc<SeriesStore>> {
        self.sampler.as_ref().map(|s| s.store())
    }

    /// The LogP parameters in use.
    pub fn logp(&self) -> &LogP {
        &self.logp
    }

    /// The fault plan in use.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Run one broadcast and return its metrics.
    pub fn run(&self, factory: &dyn ProtocolFactory) -> Result<Outcome, SimError> {
        self.run_reusable(factory, &mut RunArena::new())
    }

    /// Like [`Simulation::run`], but drawing all per-run storage from
    /// `arena`. Results are bit-identical to a fresh run; the arena
    /// only saves the allocations. Reuse one arena across the
    /// repetitions of a campaign for the intended effect.
    pub fn run_reusable(
        &self,
        factory: &dyn ProtocolFactory,
        arena: &mut RunArena,
    ) -> Result<Outcome, SimError> {
        if self.record_trace {
            let mut sink = VecSink::new();
            self.run_with_sink_reusable(factory, &mut sink, arena)
        } else {
            self.run_with_sink_reusable(factory, &mut NullSink, arena)
        }
    }

    /// Run one broadcast, additionally recording a full event trace.
    pub fn run_traced(&self, factory: &dyn ProtocolFactory) -> Result<(Outcome, Trace), SimError> {
        let mut sink = VecSink::new();
        let outcome = self.run_with_sink(factory, &mut sink)?;
        Ok((outcome, Trace::from_events(&sink.events)))
    }

    /// Run one broadcast, returning the raw observability events
    /// alongside the outcome — the input `ct-analyze` consumes.
    pub fn run_with_events(
        &self,
        factory: &dyn ProtocolFactory,
    ) -> Result<(Outcome, Vec<ObsEvent>), SimError> {
        let mut sink = VecSink::new();
        let outcome = self.run_with_sink(factory, &mut sink)?;
        Ok((outcome, sink.events))
    }

    /// Run one broadcast, streaming every event into `sink`.
    ///
    /// The sink's [`EventSink::enabled`] flag is checked once, before
    /// the event loop: with a disabled sink (the default [`NullSink`])
    /// no events are constructed at all and the run costs the same as
    /// an unobserved one.
    pub fn run_with_sink(
        &self,
        factory: &dyn ProtocolFactory,
        sink: &mut dyn EventSink,
    ) -> Result<Outcome, SimError> {
        self.run_with_sink_reusable(factory, sink, &mut RunArena::new())
    }

    /// [`Simulation::run_with_sink`] with arena-backed storage; see
    /// [`Simulation::run_reusable`].
    pub fn run_with_sink_reusable(
        &self,
        factory: &dyn ProtocolFactory,
        sink: &mut dyn EventSink,
        arena: &mut RunArena,
    ) -> Result<Outcome, SimError> {
        let p = self.p;
        let ctx = BuildCtx {
            p,
            logp: self.logp,
            seed: self.seed,
        };
        let observing = sink.enabled();
        arena.reset(p as usize, observing);
        factory.build_into(&ctx, &mut arena.procs)?;
        let RunArena {
            queue,
            send_busy_until,
            done,
            recv_queue,
            recv_busy,
            colored_seen,
            procs,
        } = arena;
        assert_eq!(procs.len(), p as usize, "factory must build P processes");

        let o = self.logp.o();
        let wire = self.logp.o() + self.logp.l(); // send start → arrival

        if observing {
            sink.emit(&ObsEvent::sim(
                Time::ZERO,
                ObsEventKind::PhaseBegin {
                    name: phases::BROADCAST.into(),
                },
            ));
            // The root (and any pre-colored rank) is colored at t = 0.
            for r in 0..p {
                if let Some(via) = procs[r as usize].colored_via() {
                    colored_seen.set(r as usize);
                    sink.emit(&ObsEvent::sim(
                        Time::ZERO,
                        ObsEventKind::Colored { rank: r, via },
                    ));
                }
            }
        }

        // Per-rank tallies handed to the outcome (allocated per run; the
        // outcome takes ownership).
        let mut sent_per_rank = vec![0u32; p as usize];
        let mut messages = MessageCounts::default();
        let mut quiescence = Time::ZERO;
        let mut events: u64 = 0;

        if let Some(f) = self.flight.as_deref() {
            // The single-threaded simulator owns shard 0; there is no
            // wall clock, so wall_us stays 0 and `step` carries LogP
            // time.
            f.record(0, FlightKind::IterStart, NO_RANK, self.seed, 0, 0);
        }

        // Initial poll of every live rank at t = 0.
        for r in 0..p {
            if !self.faults.is_failed(r) {
                queue.push(Time::ZERO, r, EventKind::SenderFree);
            }
        }

        while let Some((now, r, kind)) = queue.pop() {
            events += 1;
            if events > self.max_events {
                return Err(SimError::EventLimitExceeded {
                    limit: self.max_events,
                });
            }
            match kind {
                EventKind::Arrive { from, payload } => {
                    if self.faults.is_failed(r) {
                        if observing {
                            sink.emit(&ObsEvent::sim(
                                now,
                                ObsEventKind::DropDead {
                                    from,
                                    to: r,
                                    payload,
                                },
                            ));
                        }
                        continue;
                    }
                    if observing {
                        sink.emit(&ObsEvent::sim(
                            now,
                            ObsEventKind::Arrive {
                                from,
                                to: r,
                                payload,
                            },
                        ));
                    }
                    if let Some(f) = self.flight.as_deref() {
                        f.record(
                            0,
                            FlightKind::MailboxPush,
                            r,
                            u64::from(from),
                            now.steps(),
                            0,
                        );
                    }
                    recv_queue.push_back(r, from, payload);
                    if !recv_busy.get(r as usize) {
                        recv_busy.set(r as usize);
                        queue.push(now + o, r, EventKind::RecvDone);
                    }
                }
                EventKind::RecvDone => {
                    let (from, payload) = recv_queue
                        .pop_front(r)
                        .expect("RecvDone implies a queued message");
                    if observing {
                        sink.emit(&ObsEvent::sim(
                            now,
                            ObsEventKind::Deliver {
                                from,
                                to: r,
                                payload,
                            },
                        ));
                    }
                    quiescence = quiescence.max(now);
                    procs[r as usize].on_message(from, payload, now);
                    if observing && !colored_seen.get(r as usize) {
                        if let Some(via) = procs[r as usize].colored_via() {
                            colored_seen.set(r as usize);
                            sink.emit(&ObsEvent::sim(now, ObsEventKind::Colored { rank: r, via }));
                        }
                    }
                    // Delivery may have unblocked sends.
                    done.unset(r as usize);
                    if send_busy_until[r as usize] <= now {
                        self.poll(
                            r,
                            now,
                            procs,
                            queue,
                            send_busy_until,
                            done,
                            &mut sent_per_rank,
                            &mut messages,
                            &mut quiescence,
                            observing,
                            sink,
                            wire,
                            o,
                        )?;
                    }
                    if !recv_queue.is_empty(r) {
                        queue.push(now + o, r, EventKind::RecvDone);
                    } else {
                        recv_busy.unset(r as usize);
                    }
                }
                EventKind::SenderFree | EventKind::Repoll => {
                    if done.get(r as usize) || send_busy_until[r as usize] > now {
                        continue;
                    }
                    self.poll(
                        r,
                        now,
                        procs,
                        queue,
                        send_busy_until,
                        done,
                        &mut sent_per_rank,
                        &mut messages,
                        &mut quiescence,
                        observing,
                        sink,
                        wire,
                        o,
                    )?;
                }
            }
        }

        if observing {
            sink.emit(&ObsEvent::sim(
                quiescence,
                ObsEventKind::PhaseEnd {
                    name: phases::BROADCAST.into(),
                },
            ));
        }

        let colored_at: Vec<Option<Time>> = procs.iter().map(|p| p.colored_at()).collect();
        let colored_via = procs.iter().map(|p| p.colored_via()).collect();
        let coloring_latency = colored_at
            .iter()
            .zip(self.faults.mask())
            .filter_map(|(c, &f)| if f { None } else { *c })
            .max()
            .unwrap_or(Time::ZERO);

        let outcome = Outcome {
            label: factory.label(),
            p,
            seed: self.seed,
            colored_at,
            colored_via,
            failed: self.faults.mask().to_vec(),
            messages,
            sent_per_rank,
            coloring_latency,
            quiescence,
            events,
        };
        if let Some(hub) = &self.telemetry {
            hub.record_sim_rep(
                outcome.events,
                outcome.messages.total(),
                outcome.quiescence.steps(),
                outcome.all_live_colored(),
            );
        }
        if let Some(f) = self.flight.as_deref() {
            f.record(
                0,
                FlightKind::IterEnd,
                NO_RANK,
                u64::from(outcome.all_live_colored()),
                outcome.quiescence.steps(),
                0,
            );
        }
        Ok(outcome)
    }

    /// Poll `r`'s protocol while its sender port is free; schedules at
    /// most one send (the port then stays busy for `o`).
    #[allow(clippy::too_many_arguments)]
    fn poll(
        &self,
        r: Rank,
        now: Time,
        procs: &mut [Box<dyn Process>],
        queue: &mut EventQueue,
        send_busy_until: &mut [Time],
        done: &mut crate::bits::BitSet,
        sent_per_rank: &mut [u32],
        messages: &mut MessageCounts,
        quiescence: &mut Time,
        observing: bool,
        sink: &mut dyn EventSink,
        wire: u64,
        o: u64,
    ) -> Result<(), SimError> {
        match procs[r as usize].poll_send(now) {
            SendPoll::Now { to, payload } => {
                debug_assert!(to < self.p, "send target out of range");
                sent_per_rank[r as usize] += 1;
                match payload {
                    Payload::Tree => messages.tree += 1,
                    Payload::Gossip { .. } => messages.gossip += 1,
                    Payload::Correction => messages.correction += 1,
                    Payload::Ack => messages.ack += 1,
                }
                if observing {
                    sink.emit(&ObsEvent::sim(
                        now,
                        ObsEventKind::SendStart {
                            from: r,
                            to,
                            payload,
                        },
                    ));
                }
                send_busy_until[r as usize] = now + o;
                *quiescence = (*quiescence).max(now + o);
                queue.push(now + o, r, EventKind::SenderFree);
                // The wire delivers even to dead processes; they drop it.
                queue.push(now + wire, to, EventKind::Arrive { from: r, payload });
            }
            SendPoll::WaitUntil(at) => {
                if at <= now {
                    return Err(SimError::NonAdvancingWait { rank: r, now, at });
                }
                if let Some(f) = self.flight.as_deref() {
                    f.record(0, FlightKind::TimerArm, r, at.steps(), now.steps(), 0);
                }
                queue.push(at, r, EventKind::Repoll);
            }
            SendPoll::Idle => {}
            SendPoll::Done => done.set(r as usize),
        }
        Ok(())
    }
}

impl SimulationBuilder {
    /// Set the fault plan (default: no failures).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        assert_eq!(plan.p(), self.p, "fault plan size must match P");
        self.faults = Some(plan);
        self
    }

    /// Set the seed passed to randomized protocols (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Record a full event trace on every run (default off).
    pub fn trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Override the runaway-event cap.
    pub fn max_events(mut self, cap: u64) -> Self {
        self.max_events = cap;
        self
    }

    /// Record per-repetition counters into `hub` (default off). The
    /// hot path is untouched — one [`TelemetryHub::record_sim_rep`]
    /// call per completed run, so outcomes and traces are bit-identical
    /// with telemetry on or off.
    pub fn telemetry(mut self, hub: Arc<TelemetryHub>) -> Self {
        self.telemetry = Some(hub);
        self
    }

    /// Record flight-recorder events into `recorder`'s shard 0 (default
    /// off): iteration markers, message arrivals (with sender identity)
    /// and protocol timer arms, in the same record schema the cluster
    /// runtime writes. A pure observer — outcomes and traces are
    /// bit-identical with the recorder on or off.
    pub fn flight(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.flight = Some(recorder);
        self
    }

    /// Continuously sample the attached telemetry hub every `interval`
    /// into a `ct-series-v1` ring, evaluating the health rules per
    /// window (default off; requires [`SimulationBuilder::telemetry`]
    /// to have any effect). The sampler is a pure observer on its own
    /// thread — outcomes and traces are bit-identical with sampling on
    /// or off.
    pub fn sample(mut self, interval: std::time::Duration) -> Self {
        self.sample = Some(interval);
        self
    }

    /// Finalize. When both a telemetry hub and a sampling interval are
    /// configured, this spawns the background sampler thread.
    pub fn build(self) -> Simulation {
        let faults = self.faults.unwrap_or_else(|| FaultPlan::none(self.p));
        let sampler = match (&self.telemetry, self.sample) {
            (Some(hub), Some(interval)) => Some(Arc::new(Sampler::spawn(
                Arc::clone(hub),
                "sim",
                interval,
                DEFAULT_SERIES_CAP,
                HealthConfig::default(),
            ))),
            _ => None,
        };
        Simulation {
            p: self.p,
            logp: self.logp,
            faults,
            seed: self.seed,
            record_trace: self.record_trace,
            max_events: self.max_events,
            telemetry: self.telemetry,
            flight: self.flight,
            sampler,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;
    use ct_core::correction::CorrectionKind;
    use ct_core::protocol::BroadcastSpec;
    use ct_core::tree::TreeKind;

    fn sim(p: u32) -> Simulation {
        Simulation::builder(p, LogP::PAPER).build()
    }

    #[test]
    fn plain_binomial_broadcast_colors_everyone() {
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let out = sim(64).run(&spec).unwrap();
        assert!(out.all_live_colored());
        assert_eq!(out.messages.tree, 63);
        assert_eq!(out.messages.total(), 63);
        // P=2^6: coloring latency = 6 · (2o+L) = 24 (see schedule tests).
        assert_eq!(out.coloring_latency, Time::new(24));
    }

    #[test]
    fn simulated_schedule_matches_analytic_schedule() {
        // The engine's fault-free dissemination must equal the closed
        // form in ct-core::tree::schedule for every rank.
        for kind in [
            TreeKind::BINOMIAL,
            TreeKind::LAME2,
            TreeKind::OPTIMAL,
            TreeKind::FOUR_ARY,
        ] {
            let p = 100;
            let logp = LogP::PAPER;
            let tree = kind.build(p, &logp).unwrap();
            let analytic = tree.dissemination_schedule(&logp);
            let spec = BroadcastSpec::plain_tree(kind);
            let out = Simulation::builder(p, logp).build().run(&spec).unwrap();
            for (r, &expected) in analytic.iter().enumerate() {
                assert_eq!(out.colored_at[r], Some(expected), "{kind} rank {r}");
            }
        }
    }

    #[test]
    fn failed_subtree_stays_uncolored_without_correction() {
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        // Rank 1's subtree in binomial(8) is {1, 3, 5, 7}.
        let faults = FaultPlan::from_ranks(8, &[1]).unwrap();
        let out = Simulation::builder(8, LogP::PAPER)
            .faults(faults)
            .build()
            .run(&spec)
            .unwrap();
        assert!(!out.all_live_colored());
        assert_eq!(out.uncolored_live(), vec![3, 5, 7]);
        // Root still sends to dead rank 1 (no feedback); the orphaned
        // subtree {3,5,7} never forwards: 3 (root) + 1 (rank 2 → 6).
        assert_eq!(out.messages.tree, 4);
    }

    #[test]
    fn corrected_tree_overlapped_heals_failures() {
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 4 },
        );
        let faults = FaultPlan::from_ranks(64, &[1, 2, 40]).unwrap();
        let out = Simulation::builder(64, LogP::PAPER)
            .faults(faults)
            .build()
            .run(&spec)
            .unwrap();
        assert!(
            out.all_live_colored(),
            "uncolored: {:?}",
            out.uncolored_live()
        );
        assert!(out.correction_colored() > 0);
    }

    #[test]
    fn checked_sync_heals_any_gap() {
        // Fail all children of the root except one — a huge gap that
        // opportunistic(d) cannot cover but checked correction can.
        let spec = BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
        let faults = FaultPlan::from_ranks(64, &[1, 2, 4, 8, 16]).unwrap();
        let out = Simulation::builder(64, LogP::PAPER)
            .faults(faults)
            .build()
            .run(&spec)
            .unwrap();
        assert!(
            out.all_live_colored(),
            "uncolored: {:?}",
            out.uncolored_live()
        );
    }

    #[test]
    fn quiescence_is_at_least_coloring_latency() {
        let spec = BroadcastSpec::corrected_tree_sync(TreeKind::LAME2, CorrectionKind::Checked);
        let out = sim(128).run(&spec).unwrap();
        assert!(out.quiescence >= out.coloring_latency);
    }

    #[test]
    fn same_seed_same_outcome() {
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 2 },
        );
        let faults = FaultPlan::random_count(256, 10, 99).unwrap();
        let mk = || {
            Simulation::builder(256, LogP::PAPER)
                .faults(faults.clone())
                .seed(7)
                .build()
                .run(&spec)
                .unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.colored_at, b.colored_at);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.quiescence, b.quiescence);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn trace_records_sends_and_deliveries() {
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let (out, trace) = sim(8).run_traced(&spec).unwrap();
        let sends = trace.sends().count() as u64;
        assert_eq!(sends, out.messages.total());
        // Every delivery follows its send by exactly 2o + L.
        for s in trace.sends() {
            let deliver = trace
                .events
                .iter()
                .find(|e| e.kind == TraceKind::Deliver && e.from == s.from && e.to == s.to)
                .expect("fault-free: every send is delivered");
            assert_eq!(deliver.time, s.time + LogP::PAPER.transit_steps());
        }
    }

    #[test]
    fn event_limit_guards_against_runaway() {
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let err = Simulation::builder(1024, LogP::PAPER)
            .max_events(10)
            .build()
            .run(&spec);
        assert!(matches!(
            err,
            Err(SimError::EventLimitExceeded { limit: 10 })
        ));
    }

    #[test]
    fn ack_tree_doubles_latency() {
        let plain = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let acked = BroadcastSpec::ack_tree(TreeKind::BINOMIAL);
        let p = 256;
        let a = sim(p).run(&plain).unwrap();
        let b = sim(p).run(&acked).unwrap();
        assert_eq!(b.messages.ack, (p - 1) as u64);
        assert!(
            b.quiescence.steps() >= 2 * a.coloring_latency.steps(),
            "ack wave must at least double the broadcast: {} vs {}",
            b.quiescence,
            a.coloring_latency
        );
    }

    #[test]
    fn single_process_broadcast_is_trivial() {
        let spec = BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
        let out = sim(1).run(&spec).unwrap();
        assert!(out.all_live_colored());
        assert_eq!(out.messages.total(), 0);
        assert_eq!(out.coloring_latency, Time::ZERO);
    }
}
