//! The calendar (bucket) event queue behind the engine.
//!
//! The engine originally kept its pending events in a binary heap
//! ordered by `(time, class, seq)`. The LogP invariants (`L ≥ 1`,
//! `o ≥ 1`, validated in `ct-logp`) guarantee that every event pushed
//! while draining time `t` lies strictly in the future: `SenderFree`
//! and `RecvDone` land at `t + o`, `Arrive` at `t + o + L`, and a
//! `Repoll` at `t' ≤ t` is rejected as [`SimError::NonAdvancingWait`]
//! (`crate::SimError`). That makes a calendar queue *exactly*
//! order-equivalent to the heap — no event can join a bucket that is
//! already being drained — while turning the hot push/pop pair from
//! `O(log n)` comparisons into array appends and cursor walks.
//!
//! Layout: a window of [`WINDOW`] consecutive absolute time steps, one
//! bucket per step, four FIFO lanes per bucket (one per same-time
//! ordering class). Lanes are typed for density ([`Bucket`]): since the
//! lane itself encodes the class, the three poll-like lanes store bare
//! 4-byte ranks and only arrivals carry sender + packed payload (12
//! bytes) — a cache line holds 16 pending polls or 5 arrivals, against
//! 4 of the old 16-byte `(Rank, EventKind)` tuples. Within a lane,
//! append order *is* sequence order —
//! the global sequence counter is monotone — so FIFO drain reproduces
//! the heap's `seq` tie-break. Events beyond the window (distant
//! `WaitUntil`s, `Time::NEVER`) overflow into a small binary heap with
//! the original `(time, class, seq)` ordering; when the window empties
//! the queue re-bases onto the earliest overflow time and drains the
//! now-in-window prefix back into buckets, preserving that order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ct_core::protocol::Payload;
use ct_logp::{Rank, Time};

/// The four event kinds driving a run (see the engine module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A rank's sender port became free; poll the protocol.
    SenderFree,
    /// A message reached a rank's receive port.
    Arrive {
        /// Sending rank.
        from: Rank,
        /// Message content.
        payload: Payload,
    },
    /// A rank finished the `o`-long processing of its queue head.
    RecvDone,
    /// A protocol-requested `WaitUntil` expired.
    Repoll,
}

impl EventKind {
    /// Same-time ordering class. Deliveries must precede sender polls at
    /// equal timestamps: a message whose processing completes at `t` is
    /// available to the send decision made at `t` — this is what makes
    /// the simulated checked correction match Lemma 2 exactly (a process
    /// that hears from both sides at `t` sends nothing more at `t`).
    pub(crate) fn class(self) -> u8 {
        match self {
            EventKind::Arrive { .. } => 0,
            EventKind::RecvDone => 1,
            EventKind::SenderFree => 2,
            EventKind::Repoll => 3,
        }
    }
}

/// Bucket window size in time steps. Quiescence of the paper workloads
/// is tens of steps, so one window normally covers a whole run; the
/// overflow heap handles anything longer (or `Time::NEVER`).
const WINDOW: usize = 1024;
const LANES: usize = 4;

/// An arrival packed to 12 bytes (vs 16 for `(Rank, EventKind)`): the
/// lane already encodes the event class, so only `Arrive` needs more
/// than the destination rank, and its payload fits a `u32` tag+round.
#[derive(Clone, Copy, Debug)]
struct PackedArrive {
    to: Rank,
    from: Rank,
    payload: u32,
}

#[inline]
fn pack_payload(p: Payload) -> u32 {
    match p {
        Payload::Tree => 0,
        Payload::Correction => 1,
        Payload::Ack => 2,
        Payload::Gossip { round } => {
            // 30 bits of round; a legitimate run is nowhere near (each
            // hop increments by one), so fail loudly rather than wrap.
            assert!(round < 1 << 30, "gossip round overflows packed event");
            3 | (round << 2)
        }
    }
}

#[inline]
fn unpack_payload(v: u32) -> Payload {
    match v & 3 {
        0 => Payload::Tree,
        1 => Payload::Correction,
        2 => Payload::Ack,
        _ => Payload::Gossip { round: v >> 2 },
    }
}

/// One time step's pending events, one FIFO lane per ordering class.
/// Lanes are *typed*: the three poll-like classes store a bare 4-byte
/// rank (16 events per cache line), arrivals store [`PackedArrive`].
#[derive(Debug, Default)]
struct Bucket {
    /// Class 0: deliveries.
    arrive: Vec<PackedArrive>,
    /// Class 1: receive-port completions.
    recv_done: Vec<Rank>,
    /// Class 2: sender-port frees.
    sender_free: Vec<Rank>,
    /// Class 3: protocol wake-ups.
    repoll: Vec<Rank>,
}

impl Bucket {
    fn clear(&mut self) {
        self.arrive.clear();
        self.recv_done.clear();
        self.sender_free.clear();
        self.repoll.clear();
    }

    /// Append an event to its class lane.
    fn push(&mut self, rank: Rank, kind: EventKind) {
        match kind {
            EventKind::Arrive { from, payload } => self.arrive.push(PackedArrive {
                to: rank,
                from,
                payload: pack_payload(payload),
            }),
            EventKind::RecvDone => self.recv_done.push(rank),
            EventKind::SenderFree => self.sender_free.push(rank),
            EventKind::Repoll => self.repoll.push(rank),
        }
    }

    /// Entry `pos` of lane `lane`, or `None` past the lane's end.
    fn get(&self, lane: usize, pos: usize) -> Option<(Rank, EventKind)> {
        match lane {
            0 => self.arrive.get(pos).map(|a| {
                (
                    a.to,
                    EventKind::Arrive {
                        from: a.from,
                        payload: unpack_payload(a.payload),
                    },
                )
            }),
            1 => self.recv_done.get(pos).map(|&r| (r, EventKind::RecvDone)),
            2 => self
                .sender_free
                .get(pos)
                .map(|&r| (r, EventKind::SenderFree)),
            _ => self.repoll.get(pos).map(|&r| (r, EventKind::Repoll)),
        }
    }
}

/// An event parked beyond the current window.
#[derive(Clone, Copy, Debug)]
struct Overflow {
    time: Time,
    seq: u64,
    rank: Rank,
    kind: EventKind,
}

impl PartialEq for Overflow {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Overflow {}
impl PartialOrd for Overflow {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Overflow {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.kind.class(), self.seq).cmp(&(other.time, other.kind.class(), other.seq))
    }
}

/// The queue. [`EventQueue::reset`] retains every allocation, so a
/// reused queue runs allocation-free once warm.
pub(crate) struct EventQueue {
    /// Absolute time of `buckets[0]`.
    base: u64,
    /// Bucket currently being drained.
    cursor: usize,
    /// Class lane currently being drained within the cursor bucket.
    lane: usize,
    /// Next position within that lane.
    pos: usize,
    /// Pending (pushed, not yet popped) events resident in buckets.
    len: usize,
    buckets: Vec<Bucket>,
    overflow: BinaryHeap<Reverse<Overflow>>,
    /// Monotone push counter, reproducing the heap's tie-break.
    seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> EventQueue {
        EventQueue {
            base: 0,
            cursor: 0,
            lane: 0,
            pos: 0,
            len: 0,
            buckets: (0..WINDOW).map(|_| Bucket::default()).collect(),
            overflow: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Empty the queue for a fresh run, keeping all backing storage.
    pub(crate) fn reset(&mut self) {
        for bucket in self.buckets.iter_mut() {
            bucket.clear();
        }
        self.overflow.clear();
        self.base = 0;
        self.cursor = 0;
        self.lane = 0;
        self.pos = 0;
        self.len = 0;
        self.seq = 0;
    }

    /// Schedule an event. Must not be earlier than the bucket being
    /// drained — guaranteed by the LogP invariants (see module docs).
    pub(crate) fn push(&mut self, time: Time, rank: Rank, kind: EventKind) {
        self.seq += 1;
        let idx = time
            .steps()
            .checked_sub(self.base)
            .expect("event scheduled before the window base");
        if idx < WINDOW as u64 {
            let b = idx as usize;
            // Strictly-future pushes can never land behind the drain
            // point; only saturated `Time::NEVER` arithmetic could, and
            // that must fail loudly rather than lose the event.
            assert!(
                b > self.cursor || (b == self.cursor && kind.class() as usize >= self.lane),
                "event scheduled into an already-drained lane (time did not advance)"
            );
            self.buckets[b].push(rank, kind);
            self.len += 1;
        } else {
            self.overflow.push(Reverse(Overflow {
                time,
                seq: self.seq,
                rank,
                kind,
            }));
        }
    }

    /// Next event in `(time, class, seq)` order, or `None` when drained.
    pub(crate) fn pop(&mut self) -> Option<(Time, Rank, EventKind)> {
        loop {
            if self.len == 0 {
                // Window exhausted; jump straight to the overflow.
                if self.overflow.is_empty() {
                    return None;
                }
                self.rebase();
            }
            while self.lane < LANES {
                if let Some((rank, kind)) = self.buckets[self.cursor].get(self.lane, self.pos) {
                    self.pos += 1;
                    self.len -= 1;
                    return Some((Time::new(self.base + self.cursor as u64), rank, kind));
                }
                self.lane += 1;
                self.pos = 0;
            }
            // Bucket fully drained: release its storage for this window
            // and move on. (Consumed events stay in the lane vectors
            // until this point.)
            self.buckets[self.cursor].clear();
            self.lane = 0;
            self.pos = 0;
            self.cursor += 1;
            if self.cursor == WINDOW {
                debug_assert_eq!(self.len, 0, "events counted but never reachable");
                if self.overflow.is_empty() {
                    return None;
                }
                self.rebase();
            }
        }
    }

    /// Move the window to the earliest overflow time and pull every
    /// overflow event that now fits back into buckets. Heap pop order is
    /// `(time, class, seq)`, so lane append order stays sequence order.
    fn rebase(&mut self) {
        debug_assert_eq!(self.len, 0);
        if self.cursor < WINDOW {
            self.buckets[self.cursor].clear();
        }
        self.base = self
            .overflow
            .peek()
            .expect("rebase requires overflow events")
            .0
            .time
            .steps();
        self.cursor = 0;
        self.lane = 0;
        self.pos = 0;
        while let Some(Reverse(ev)) = self.overflow.peek() {
            let idx = ev.time.steps() - self.base;
            if idx >= WINDOW as u64 {
                break;
            }
            let Reverse(ev) = self.overflow.pop().expect("just peeked");
            self.buckets[idx as usize].push(ev.rank, ev.kind);
            self.len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: the original binary heap with explicit
    /// `(time, class, seq)` ordering.
    #[derive(Clone, Copy, Debug)]
    struct ModelEvent {
        time: Time,
        seq: u64,
        rank: Rank,
        kind: EventKind,
    }
    impl PartialEq for ModelEvent {
        fn eq(&self, other: &Self) -> bool {
            self.seq == other.seq
        }
    }
    impl Eq for ModelEvent {}
    impl PartialOrd for ModelEvent {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for ModelEvent {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.time, self.kind.class(), self.seq).cmp(&(
                other.time,
                other.kind.class(),
                other.seq,
            ))
        }
    }

    struct Model {
        heap: BinaryHeap<Reverse<ModelEvent>>,
        seq: u64,
    }
    impl Model {
        fn new() -> Model {
            Model {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }
        fn push(&mut self, time: Time, rank: Rank, kind: EventKind) {
            self.seq += 1;
            self.heap.push(Reverse(ModelEvent {
                time,
                seq: self.seq,
                rank,
                kind,
            }));
        }
        fn pop(&mut self) -> Option<(Time, Rank, EventKind)> {
            self.heap.pop().map(|Reverse(e)| (e.time, e.rank, e.kind))
        }
    }

    /// A deterministic pseudo-random stream (no external RNG needed).
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn kind_for(i: u64) -> EventKind {
        match i % 4 {
            0 => EventKind::SenderFree,
            1 => EventKind::Arrive {
                from: (i % 7) as Rank,
                payload: Payload::Tree,
            },
            2 => EventKind::RecvDone,
            _ => EventKind::Repoll,
        }
    }

    /// Drive queue and model through an identical interleaved
    /// push/pop schedule where every push is strictly in the future —
    /// the engine's invariant — and require identical pop streams.
    fn lockstep(time_spread: u64, label: &str) {
        let mut q = EventQueue::new();
        let mut m = Model::new();
        for r in 0..16u32 {
            q.push(Time::ZERO, r, EventKind::SenderFree);
            m.push(Time::ZERO, r, EventKind::SenderFree);
        }
        let mut i = 0u64;
        loop {
            let a = q.pop();
            let b = m.pop();
            match (a, b) {
                (None, None) => break,
                (Some((ta, ra, ka)), Some((tb, rb, kb))) => {
                    assert_eq!((ta, ra, ka), (tb, rb, kb), "{label}: divergence at pop {i}");
                    // Push 1–2 strictly-future events per pop (so the
                    // schedule cannot die out early), capped so it
                    // terminates.
                    if i < 4000 {
                        let n = 1 + mix(i) % 2;
                        for j in 0..n {
                            let h = mix(i * 3 + j);
                            let dt = 1 + h % time_spread;
                            let rank = (h >> 8) as u32 % 16;
                            let kind = kind_for(h >> 16);
                            q.push(ta + dt, rank, kind);
                            m.push(tb + dt, rank, kind);
                        }
                    }
                    i += 1;
                }
                (a, b) => panic!("{label}: one queue drained early: {a:?} vs {b:?}"),
            }
        }
        assert!(i > 4000, "{label}: schedule must actually exercise pops");
    }

    #[test]
    fn matches_heap_order_within_window() {
        lockstep(8, "dense");
    }

    #[test]
    fn matches_heap_order_across_window_overflow() {
        // Deltas far beyond WINDOW force constant overflow + rebase.
        lockstep(5000, "sparse");
    }

    #[test]
    fn never_scheduled_events_surface_last() {
        let mut q = EventQueue::new();
        q.push(Time::NEVER, 3, EventKind::Repoll);
        q.push(Time::ZERO, 1, EventKind::SenderFree);
        q.push(Time::new(2000), 2, EventKind::RecvDone);
        assert_eq!(q.pop(), Some((Time::ZERO, 1, EventKind::SenderFree)));
        assert_eq!(q.pop(), Some((Time::new(2000), 2, EventKind::RecvDone)));
        assert_eq!(q.pop(), Some((Time::NEVER, 3, EventKind::Repoll)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_orders_by_class_then_fifo() {
        let mut q = EventQueue::new();
        let t = Time::new(5);
        q.push(t, 9, EventKind::Repoll);
        q.push(t, 8, EventKind::SenderFree);
        q.push(t, 7, EventKind::RecvDone);
        q.push(
            t,
            6,
            EventKind::Arrive {
                from: 0,
                payload: Payload::Tree,
            },
        );
        q.push(t, 5, EventKind::RecvDone);
        let order: Vec<Rank> = std::iter::from_fn(|| q.pop()).map(|(_, r, _)| r).collect();
        assert_eq!(order, vec![6, 7, 5, 8, 9]);
    }

    #[test]
    fn reset_restores_a_pristine_queue() {
        let mut q = EventQueue::new();
        q.push(Time::new(1), 1, EventKind::SenderFree);
        q.push(Time::new(90_000), 2, EventKind::Repoll);
        let _ = q.pop();
        q.reset();
        assert_eq!(q.pop(), None);
        // And it still orders correctly after reuse.
        q.push(Time::new(3), 4, EventKind::RecvDone);
        q.push(Time::new(2), 5, EventKind::SenderFree);
        assert_eq!(q.pop(), Some((Time::new(2), 5, EventKind::SenderFree)));
        assert_eq!(q.pop(), Some((Time::new(3), 4, EventKind::RecvDone)));
        assert_eq!(q.pop(), None);
    }
}
