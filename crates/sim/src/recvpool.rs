//! Pooled per-rank receive queues.
//!
//! Each rank's receive port queues `(from, payload)` pairs FIFO. As
//! `Vec<VecDeque<…>>` that is one heap allocation *per rank* — a
//! million buffers at `P = 2²⁰`, none of them more than a few entries
//! deep. [`RecvPool`] replaces them with struct-of-arrays state: two
//! `u32` cursors per rank (head/tail of an intrusive list) plus one
//! shared node pool with a free list. Push and pop are O(1), the pool
//! grows to the peak number of *simultaneously* queued messages (tiny:
//! receive queues drain every `o` steps), and a reset keeps all
//! storage.
//!
//! Node indices are internal bookkeeping only — FIFO order per rank is
//! what the engine observes, and that is identical to the `VecDeque`
//! behaviour, so traces and outcomes are unchanged.

use ct_core::protocol::Payload;
use ct_logp::Rank;

const NIL: u32 = u32::MAX;

/// Struct-of-arrays FIFO queues for all ranks, backed by one node pool.
#[derive(Debug, Default)]
pub(crate) struct RecvPool {
    /// Head node of each rank's queue (`NIL` = empty).
    head: Vec<u32>,
    /// Tail node of each rank's queue (`NIL` = empty).
    tail: Vec<u32>,
    /// Per-node forward link (`NIL` = last).
    next: Vec<u32>,
    /// Per-node message: sending rank.
    from: Vec<Rank>,
    /// Per-node message: content.
    payload: Vec<Payload>,
    /// Head of the free list threaded through `next` (`NIL` = empty).
    free: u32,
}

impl RecvPool {
    pub fn new() -> RecvPool {
        RecvPool {
            head: Vec::new(),
            tail: Vec::new(),
            next: Vec::new(),
            from: Vec::new(),
            payload: Vec::new(),
            free: NIL,
        }
    }

    /// Empty every queue and size for `p` ranks, retaining the node
    /// pool. All nodes return to the free list.
    pub fn reset(&mut self, p: usize) {
        self.head.clear();
        self.head.resize(p, NIL);
        self.tail.clear();
        self.tail.resize(p, NIL);
        // Rethread the whole pool as the free list.
        let nodes = self.next.len();
        for i in 0..nodes {
            self.next[i] = if i + 1 < nodes { i as u32 + 1 } else { NIL };
        }
        self.free = if nodes == 0 { NIL } else { 0 };
    }

    /// Append a message to `r`'s queue.
    pub fn push_back(&mut self, r: Rank, from: Rank, payload: Payload) {
        let node = if self.free != NIL {
            let node = self.free;
            self.free = self.next[node as usize];
            self.next[node as usize] = NIL;
            self.from[node as usize] = from;
            self.payload[node as usize] = payload;
            node
        } else {
            let node = self.next.len() as u32;
            self.next.push(NIL);
            self.from.push(from);
            self.payload.push(payload);
            node
        };
        let r = r as usize;
        if self.tail[r] == NIL {
            self.head[r] = node;
        } else {
            self.next[self.tail[r] as usize] = node;
        }
        self.tail[r] = node;
    }

    /// Remove and return the oldest message of `r`'s queue.
    pub fn pop_front(&mut self, r: Rank) -> Option<(Rank, Payload)> {
        let r = r as usize;
        let node = self.head[r];
        if node == NIL {
            return None;
        }
        let n = node as usize;
        self.head[r] = self.next[n];
        if self.head[r] == NIL {
            self.tail[r] = NIL;
        }
        let msg = (self.from[n], self.payload[n]);
        self.next[n] = self.free;
        self.free = node;
        Some(msg)
    }

    /// Is `r`'s queue empty?
    #[inline]
    pub fn is_empty(&self, r: Rank) -> bool {
        self.head[r as usize] == NIL
    }

    /// Total node capacity ever allocated (the peak backlog across all
    /// resets) — surfaced by allocator-churn diagnostics.
    pub fn capacity(&self) -> usize {
        self.next.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_rank_with_interleaved_ranks() {
        let mut pool = RecvPool::new();
        pool.reset(4);
        pool.push_back(1, 10, Payload::Tree);
        pool.push_back(2, 20, Payload::Correction);
        pool.push_back(1, 11, Payload::Ack);
        pool.push_back(1, 12, Payload::Gossip { round: 3 });
        assert_eq!(pool.pop_front(1), Some((10, Payload::Tree)));
        assert_eq!(pool.pop_front(2), Some((20, Payload::Correction)));
        assert!(pool.is_empty(2));
        assert_eq!(pool.pop_front(1), Some((11, Payload::Ack)));
        assert_eq!(pool.pop_front(1), Some((12, Payload::Gossip { round: 3 })));
        assert!(pool.is_empty(1));
        assert_eq!(pool.pop_front(1), None);
    }

    #[test]
    fn reset_recycles_nodes_without_growth() {
        let mut pool = RecvPool::new();
        pool.reset(2);
        for _ in 0..5 {
            pool.push_back(0, 1, Payload::Tree);
        }
        let cap = pool.capacity();
        assert_eq!(cap, 5);
        pool.reset(2);
        assert!(pool.is_empty(0));
        for _ in 0..5 {
            pool.push_back(1, 0, Payload::Tree);
        }
        assert_eq!(pool.capacity(), cap, "reset must reuse the pool");
    }

    #[test]
    fn free_list_reuses_popped_nodes() {
        let mut pool = RecvPool::new();
        pool.reset(1);
        pool.push_back(0, 1, Payload::Tree);
        let _ = pool.pop_front(0);
        pool.push_back(0, 2, Payload::Ack);
        assert_eq!(pool.capacity(), 1, "popped node must be recycled");
        assert_eq!(pool.pop_front(0), Some((2, Payload::Ack)));
    }
}
