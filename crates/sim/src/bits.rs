//! Flat bit-vector rank flags.
//!
//! The engine keeps three per-rank boolean flags (`done`, `recv_busy`,
//! `colored_seen`) and consults the fault mask once per arrival. As
//! plain `Vec<bool>` each costs one byte per rank — 1 MiB apiece at
//! `P = 2²⁰`, evicting the caches the event loop actually needs. A
//! [`BitSet`] packs them 64 ranks to the word (128 KiB at `P = 2²⁰`),
//! and like every arena structure it is reusable: clearing retains the
//! backing storage.

/// A fixed-size bit vector indexed by rank.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set; storage grows on [`BitSet::clear_resize`].
    pub fn new() -> BitSet {
        BitSet { words: Vec::new() }
    }

    /// Zero all bits and size for `n` ranks, retaining capacity.
    pub fn clear_resize(&mut self, n: usize) {
        let words = n.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
    }

    /// Bit `i` (must be within the sized range).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset_across_word_boundaries() {
        let mut s = BitSet::new();
        s.clear_resize(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!s.get(i));
            s.set(i);
            assert!(s.get(i));
        }
        s.unset(64);
        assert!(!s.get(64));
        assert!(s.get(63) && s.get(65));
    }

    #[test]
    fn clear_resize_zeroes_previous_contents() {
        let mut s = BitSet::new();
        s.clear_resize(100);
        s.set(7);
        s.set(99);
        s.clear_resize(100);
        assert!(!s.get(7) && !s.get(99));
        // Shrink then regrow: the regrown tail must be zero too.
        s.set(99);
        s.clear_resize(10);
        s.clear_resize(100);
        assert!(!s.get(99));
    }
}
