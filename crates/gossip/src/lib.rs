//! # ct-gossip — Corrected Gossip baseline
//!
//! Reimplementation of the algorithm Corrected Trees is measured against
//! (Hoefler, Barak, Shiloh, Drezner: *Corrected Gossip Algorithms for
//! Fast Reliable Broadcast on Unreliable Systems*, IPDPS'17; summarized
//! in §3.1 of the paper).
//!
//! Dissemination is randomized: the root sends the payload to random
//! processes; every process colored this way gossips onward. After a
//! fixed budget — a wall-clock gossip time in the simulator, or a hop-
//! counted round limit as in the paper's MPI prototype (§4.4, because
//! clock synchronization is imprecise on a real cluster) — all processes
//! colored *by gossip* run one of the ring-correction algorithms from
//! `ct-core`. Gossip is extremely robust to failures but sends many
//! redundant messages; that trade-off is exactly what Figures 6–9
//! quantify.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use ct_core::correction::{CorrPoll, Correction, CorrectionKind};
use ct_core::protocol::{
    BuildCtx, ColoredVia, Payload, Process, ProtocolError, ProtocolFactory, SendPoll,
};
use ct_logp::{Rank, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// When the gossip phase ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GossipMode {
    /// All colored processes gossip until the global time `G`, then
    /// enter correction simultaneously (the IPDPS'17 formulation; needs
    /// the synchronized clocks a simulator has).
    TimeLimited(u64),
    /// Every message carries a round counter, incremented per send; a
    /// process whose counter reaches the limit stops gossiping and
    /// enters correction (the paper's MPI implementation, §4.4).
    RoundLimited(u32),
}

impl fmt::Display for GossipMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GossipMode::TimeLimited(g) => write!(f, "time={g}"),
            GossipMode::RoundLimited(r) => write!(f, "rounds={r}"),
        }
    }
}

/// Declarative description of a Corrected Gossip broadcast.
///
/// ```
/// use ct_core::correction::CorrectionKind;
/// use ct_gossip::GossipSpec;
/// use ct_logp::LogP;
/// use ct_sim::Simulation;
///
/// let spec = GossipSpec::time_limited(14, CorrectionKind::Checked);
/// let out = Simulation::builder(128, LogP::PAPER).seed(1).build().run(&spec)?;
/// assert!(out.all_live_colored());
/// assert!(out.messages.gossip > 0);
/// # Ok::<(), ct_sim::SimError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GossipSpec {
    /// Gossip budget.
    pub mode: GossipMode,
    /// Correction algorithm run after gossip.
    pub correction: CorrectionKind,
}

impl GossipSpec {
    /// Time-limited gossip followed by the given correction.
    pub fn time_limited(gossip_time: u64, correction: CorrectionKind) -> GossipSpec {
        GossipSpec {
            mode: GossipMode::TimeLimited(gossip_time),
            correction,
        }
    }

    /// Round-limited gossip (the cluster formulation).
    pub fn round_limited(rounds: u32, correction: CorrectionKind) -> GossipSpec {
        GossipSpec {
            mode: GossipMode::RoundLimited(rounds),
            correction,
        }
    }
}

impl fmt::Display for GossipSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gossip({})+{}", self.mode, self.correction)
    }
}

impl ProtocolFactory for GossipSpec {
    fn label(&self) -> String {
        self.to_string()
    }

    fn build(&self, ctx: &BuildCtx) -> Result<Vec<Box<dyn Process>>, ProtocolError> {
        match self.mode {
            GossipMode::TimeLimited(0) => {
                return Err(ProtocolError::InvalidConfig(
                    "gossip time must be ≥ 1 step".into(),
                ))
            }
            GossipMode::RoundLimited(0) => {
                return Err(ProtocolError::InvalidConfig(
                    "gossip round limit must be ≥ 1".into(),
                ))
            }
            _ => {}
        }
        Ok((0..ctx.p)
            .map(|r| Box::new(GossipProcess::new(r, ctx.p, *self, ctx.seed)) as Box<dyn Process>)
            .collect())
    }
}

/// Per-rank state machine for Corrected Gossip.
pub struct GossipProcess {
    rank: Rank,
    p: u32,
    spec: GossipSpec,
    rng: SmallRng,
    colored_at: Option<Time>,
    colored_via: Option<ColoredVia>,
    /// Hop counter for round-limited mode.
    round: u32,
    gossip_over: bool,
    machine: Option<Box<dyn Correction>>,
    machine_done: bool,
    pending_corr: Vec<(Rank, Time)>,
    done: bool,
}

impl GossipProcess {
    /// Create the machine for `rank` of `p`; the per-process RNG stream
    /// is derived from `(seed, rank)` so runs are reproducible.
    pub fn new(rank: Rank, p: u32, spec: GossipSpec, seed: u64) -> Self {
        let stream = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(rank as u64 + 1);
        let is_root = rank == 0;
        GossipProcess {
            rank,
            p,
            spec,
            rng: SmallRng::seed_from_u64(stream),
            colored_at: is_root.then_some(Time::ZERO),
            colored_via: is_root.then_some(ColoredVia::Root),
            round: 0,
            gossip_over: false,
            machine: None,
            machine_done: false,
            pending_corr: Vec::new(),
            done: false,
        }
    }

    /// A uniformly random rank different from our own.
    pub fn random_target(&mut self) -> Rank {
        debug_assert!(self.p >= 2);
        let raw = self.rng.gen_range(0..self.p - 1);
        if raw >= self.rank {
            raw + 1
        } else {
            raw
        }
    }

    fn participates(&self) -> bool {
        !self.spec.correction.is_none()
            && matches!(
                self.colored_via,
                Some(ColoredVia::Root) | Some(ColoredVia::Dissemination)
            )
    }

    /// Correction start time: the global gossip deadline in time-limited
    /// mode, or "now" (overlapped per process) in round-limited mode.
    fn correction_start(&self, now: Time) -> Time {
        match self.spec.mode {
            GossipMode::TimeLimited(g) => Time::new(g),
            GossipMode::RoundLimited(_) => now,
        }
    }

    fn ensure_machine(&mut self, now: Time) {
        if self.machine.is_some() || self.machine_done {
            return;
        }
        let start = self.correction_start(now);
        let mut machine = self
            .spec
            .correction
            .machine(self.rank, self.p, start)
            .expect("participating implies a correction kind");
        for (from, t) in self.pending_corr.drain(..) {
            machine.on_correction(from, t);
        }
        self.machine = Some(machine);
    }
}

impl Process for GossipProcess {
    fn on_message(&mut self, from: Rank, payload: Payload, now: Time) {
        match payload {
            Payload::Gossip { round } => {
                if self.colored_at.is_none() {
                    self.colored_at = Some(now);
                    self.colored_via = Some(ColoredVia::Dissemination);
                    self.done = false;
                }
                // Track gossip progress even on duplicates: the round
                // counter is a logical clock for the round-limited mode.
                self.round = self.round.max(round);
                if let GossipMode::RoundLimited(limit) = self.spec.mode {
                    if round >= limit {
                        self.gossip_over = true;
                    }
                }
            }
            Payload::Correction => {
                if self.colored_at.is_none() {
                    self.colored_at = Some(now);
                    self.colored_via = Some(ColoredVia::Correction);
                    // Colored by correction: stays silent (§3.1).
                }
                if self.participates() {
                    if let Some(m) = self.machine.as_mut() {
                        m.on_correction(from, now);
                    } else if !self.machine_done {
                        self.pending_corr.push((from, now));
                    }
                }
            }
            Payload::Tree | Payload::Ack => {
                debug_assert!(false, "unexpected payload in gossip broadcast");
            }
        }
    }

    fn poll_send(&mut self, now: Time) -> SendPoll {
        if self.done {
            return SendPoll::Done;
        }
        if self.colored_at.is_none() {
            return SendPoll::Idle;
        }
        if self.colored_via == Some(ColoredVia::Correction) {
            // Non-participant.
            self.done = true;
            return SendPoll::Done;
        }
        // Gossip phase.
        if !self.gossip_over && self.p >= 2 {
            match self.spec.mode {
                GossipMode::TimeLimited(g) => {
                    if now < Time::new(g) {
                        let to = self.random_target();
                        self.round += 1;
                        return SendPoll::Now {
                            to,
                            payload: Payload::Gossip { round: self.round },
                        };
                    }
                    self.gossip_over = true;
                }
                GossipMode::RoundLimited(limit) => {
                    if self.round < limit {
                        let to = self.random_target();
                        self.round += 1;
                        return SendPoll::Now {
                            to,
                            payload: Payload::Gossip { round: self.round },
                        };
                    }
                    self.gossip_over = true;
                }
            }
        }
        // Correction phase.
        if self.spec.correction.is_none() {
            self.done = true;
            return SendPoll::Done;
        }
        if !self.machine_done {
            self.ensure_machine(now);
            let poll = self.machine.as_mut().expect("just ensured").poll(now);
            return match poll {
                CorrPoll::Send(to) => SendPoll::Now {
                    to,
                    payload: Payload::Correction,
                },
                CorrPoll::WaitUntil(t) => SendPoll::WaitUntil(t),
                CorrPoll::Idle => SendPoll::Idle,
                CorrPoll::Done => {
                    self.machine = None;
                    self.machine_done = true;
                    self.done = true;
                    SendPoll::Done
                }
            };
        }
        self.done = true;
        SendPoll::Done
    }

    fn colored_at(&self) -> Option<Time> {
        self.colored_at
    }

    fn colored_via(&self) -> Option<ColoredVia> {
        self.colored_via
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_logp::LogP;
    use ct_sim::{FaultPlan, Simulation};

    #[test]
    fn fault_free_gossip_with_checked_correction_colors_everyone() {
        let spec = GossipSpec::time_limited(12, CorrectionKind::Checked);
        for seed in 0..5 {
            let out = Simulation::builder(128, LogP::PAPER)
                .seed(seed)
                .build()
                .run(&spec)
                .unwrap();
            assert!(
                out.all_live_colored(),
                "seed {seed}: {:?}",
                out.uncolored_live()
            );
            assert!(out.messages.gossip > 0);
            assert!(out.messages.correction > 0);
        }
    }

    #[test]
    fn gossip_is_robust_to_heavy_failures() {
        let spec = GossipSpec::time_limited(24, CorrectionKind::Checked);
        let faults = FaultPlan::random_rate(256, 0.04, 11).unwrap();
        let out = Simulation::builder(256, LogP::PAPER)
            .seed(3)
            .faults(faults)
            .build()
            .run(&spec)
            .unwrap();
        assert!(out.all_live_colored(), "{:?}", out.uncolored_live());
    }

    #[test]
    fn round_limited_mode_terminates_and_colors() {
        let spec = GossipSpec::round_limited(10, CorrectionKind::Checked);
        let out = Simulation::builder(64, LogP::PAPER)
            .seed(5)
            .build()
            .run(&spec)
            .unwrap();
        assert!(out.all_live_colored(), "{:?}", out.uncolored_live());
    }

    #[test]
    fn gossip_message_count_scales_with_gossip_time() {
        let short = GossipSpec::time_limited(8, CorrectionKind::Checked);
        let long = GossipSpec::time_limited(20, CorrectionKind::Checked);
        let run = |s: &GossipSpec| {
            Simulation::builder(128, LogP::PAPER)
                .seed(1)
                .build()
                .run(s)
                .unwrap()
                .messages
                .gossip
        };
        assert!(run(&long) > run(&short));
    }

    #[test]
    fn same_seed_reproduces_gossip_exactly() {
        let spec = GossipSpec::time_limited(15, CorrectionKind::Checked);
        let run = || {
            Simulation::builder(200, LogP::PAPER)
                .seed(42)
                .build()
                .run(&spec)
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.colored_at, b.colored_at);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn different_ranks_use_different_streams() {
        let spec = GossipSpec::time_limited(10, CorrectionKind::Checked);
        let mut a = GossipProcess::new(1, 1000, spec, 7);
        let mut b = GossipProcess::new(2, 1000, spec, 7);
        let ta: Vec<Rank> = (0..20).map(|_| a.random_target()).collect();
        let tb: Vec<Rank> = (0..20).map(|_| b.random_target()).collect();
        assert_ne!(ta, tb);
        assert!(ta.iter().all(|&t| t != 1 && t < 1000));
        assert!(tb.iter().all(|&t| t != 2));
    }

    #[test]
    fn rejects_zero_budgets() {
        let ctx = BuildCtx {
            p: 8,
            logp: LogP::PAPER,
            seed: 0,
        };
        assert!(GossipSpec::time_limited(0, CorrectionKind::Checked)
            .build(&ctx)
            .is_err());
        assert!(GossipSpec::round_limited(0, CorrectionKind::Checked)
            .build(&ctx)
            .is_err());
    }

    #[test]
    fn gossip_sends_many_more_messages_than_tree_dissemination() {
        // Sanity for the Figure 6 shape: gossip with enough time to color
        // everyone sends ≫ 1 dissemination message per process.
        let spec = GossipSpec::time_limited(20, CorrectionKind::Opportunistic { distance: 4 });
        let out = Simulation::builder(256, LogP::PAPER)
            .seed(2)
            .build()
            .run(&spec)
            .unwrap();
        assert!(
            out.messages.gossip as f64 / 256.0 > 1.5,
            "gossip redundancy should exceed tree dissemination"
        );
    }

    #[test]
    fn label_is_stable() {
        assert_eq!(
            GossipSpec::time_limited(30, CorrectionKind::Checked).label(),
            "gossip(time=30)+checked"
        );
        assert_eq!(
            GossipSpec::round_limited(4, CorrectionKind::Opportunistic { distance: 2 }).label(),
            "gossip(rounds=4)+opportunistic(d=2)"
        );
    }
}
