//! # corrected-trees — facade crate
//!
//! Reproduction of *Corrected Trees for Reliable Group Communication*
//! (Küttler et al., PPoPP 2019): a two-phase fault-tolerant broadcast
//! (tree dissemination + ring correction), with a LogP discrete-event
//! simulator, the Corrected Gossip baseline, analytical bounds, an
//! in-process message-passing cluster runtime and a full experiment
//! harness.
//!
//! This crate re-exports the workspace members under stable names:
//!
//! * [`logp`] — the LogP machine model ([`ct_logp`]),
//! * [`core`] — trees, correction algorithms, broadcast protocols,
//! * [`sim`] — the discrete-event simulator with fault injection,
//! * [`gossip`] — the Corrected Gossip baseline,
//! * [`analysis`] — Lemma 2/3 bounds and statistics,
//! * [`exp`] — the experiment campaigns behind every paper figure,
//! * [`runtime`] — the thread-based cluster runtime (MPI stand-in),
//! * [`obs`] — the shared observability layer: event sinks, metrics
//!   registry and run manifests,
//! * [`analyze`] — trace analysis: causal DAGs, critical paths with
//!   LogP cost attribution, and perf-regression snapshots.
//!
//! ## Quickstart
//!
//! ```
//! use corrected_trees::prelude::*;
//!
//! // 64 processes, paper parameters (L=2, o=1), interleaved binomial
//! // dissemination followed by optimized opportunistic correction (d=4).
//! let spec = BroadcastSpec::corrected_tree(
//!     TreeKind::Binomial { order: Ordering::Interleaved },
//!     CorrectionKind::OpportunisticOptimized { distance: 4 },
//! );
//! let outcome = Simulation::builder(64, LogP::PAPER)
//!     .seed(7)
//!     .build()
//!     .run(&spec)
//!     .expect("valid configuration");
//! assert!(outcome.all_live_colored());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ct_analysis as analysis;
pub use ct_analyze as analyze;
pub use ct_core as core;
pub use ct_exp as exp;
pub use ct_gossip as gossip;
pub use ct_logp as logp;
pub use ct_obs as obs;
pub use ct_runtime as runtime;
pub use ct_sim as sim;

/// One-stop imports for the common workflow: pick a topology, pick a
/// correction algorithm, run broadcasts in the simulator or on the
/// cluster runtime.
pub mod prelude {
    pub use ct_core::correction::CorrectionKind;
    pub use ct_core::protocol::BroadcastSpec;
    pub use ct_core::tree::{Ordering, Topology, TreeKind};
    pub use ct_logp::{LogP, Rank, Time};
    pub use ct_sim::{FaultPlan, Simulation};
}
