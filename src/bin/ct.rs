//! `ct` — command-line front end for one-off broadcast experiments.
//!
//! ```console
//! $ ct run   --tree binomial --correction checked --mode sync \
//!            --p 1024 --faults 5 --seed 7 [--trace] [--logp L=2,o=1]
//! $ ct tree  --tree lame2 --p 16            # print topology + stats
//! $ ct sweep --tree optimal --correction opp4 --p 4096 --rate 0.02 --reps 50
//! $ ct trace --tree binomial --correction opp2 --p 16 --faults 1 \
//!            --format ascii|jsonl|chrome    # event-stream visualisation
//! $ ct check --p 256 --rate 0.02 [--runtime] [--input trace.jsonl]
//!                                            # invariant monitor (exit 1 on violation)
//! $ ct forensics --p 64 --faults 3           # per-failure rescue provenance + waste
//! ```
//!
//! Everything the subcommands do is also available as library API; the
//! CLI exists so a cluster operator can poke at a configuration without
//! writing a program.

use std::sync::Arc;

use corrected_trees::analysis::Summary;
use corrected_trees::analyze::{
    analyze_forensics, analyze_trace, infer_p, parse_jsonl, split_reps, AnalysisSummary,
    AnalyzeConfig, BenchSnapshot, PerfDiff, PostmortemReport, SchedulerSummary, SeriesSummary,
};
use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::{BroadcastSpec, Payload, ProtocolFactory};
use corrected_trees::core::tree::{interleaving, stats, Ordering, Topology, TreeKind};
use corrected_trees::exp::{
    analyze_campaign, pubsub::sync_barrier_us, run_pubsub_bench, run_scale, Campaign, FaultSpec,
    ScaleConfig, Variant,
};
use corrected_trees::logp::LogP;
use corrected_trees::obs::http::{http_get, monitor_handler, HttpServer};
use corrected_trees::obs::series::{default_sample_ms, SeriesSample, SeriesStore};
use corrected_trees::obs::telemetry::{TelemetryHub, TelemetrySnapshot};
use corrected_trees::obs::{
    chrome_trace, Event, EventKind, MonitorConfig, MonitorSink, RunManifest, VecSink,
};
use corrected_trees::runtime::{
    default_flight_cap, Cluster, ClusterConfig, PubsubOptions, Topic, TopicTable,
};
use corrected_trees::sim::{FaultPlan, RunArena, Simulation, Trace};

fn usage() -> ! {
    eprintln!(
        "usage: ct <run|tree|sweep|trace|analyze|check|forensics|perf|scale|pubsub|stats|top|serve|monitor|postmortem> [options]\n\
         \n\
         common options:\n\
           --tree <binomial|binomial-inorder|kary<K>|lame<K>|optimal>  (default binomial)\n\
           --p <N>            processes (default 1024)\n\
           --logp <L=2,o=1>   machine model (default paper: L=2,o=1)\n\
         run options:\n\
           --correction <none|opp<D>|opp-plain<D>|checked|failure-proof|delayed<T>>\n\
           --mode <sync|overlap>   (default overlap)\n\
           --acked                 acknowledged tree instead of correction\n\
           --root <R>              broadcast root (default 0)\n\
           --shuffle <SEED>        randomize process numbering (§2.1)\n\
           --faults <N> | --rate <F>   random failures (default none)\n\
           --seed <S>              run seed (default 1)\n\
           --trace                 print the full event trace\n\
         sweep options:\n\
           --reps <N>              repetitions (default 50)\n\
         trace options (plus all run options):\n\
           --format <ascii|jsonl|chrome>   (default ascii)\n\
                   ascii:  Figure-5-style sender/delivery timeline\n\
                   jsonl:  one ct-obs event per line (stable schema)\n\
                   chrome: chrome://tracing / Perfetto JSON document\n\
           --ranks <a,b,c>         restrict ascii rows / jsonl events to\n\
                                   the given ranks (phase spans kept)\n\
         analyze options (all run options, or --input to read a trace):\n\
           --input <trace.jsonl>   analyze a recorded JSONL trace instead\n\
                                   of running the simulator\n\
           --view <summary|critical-path|utilization|scheduler|postmortem|series>\n\
                                   (default summary; scheduler reads a\n\
                                   ct-telemetry-v1 snapshot from --input,\n\
                                   e.g. one written by ct stats; postmortem\n\
                                   reads a ct-postmortem-v1 dump from --input;\n\
                                   series reads a ct-series-v1 JSONL export\n\
                                   from --input, e.g. one written by ct serve\n\
                                   or ct stats --runtime --series)\n\
           --ranks <a,b,c>         restrict the utilization view to ranks\n\
           --json                  machine-readable summary output\n\
           --sync-start <T>        enable the Lemma-3 bounds check at\n\
                                   synchronized correction start T\n\
         check options (all run options, or --input to read a trace):\n\
           --input <trace.jsonl>   validate a recorded JSONL trace instead\n\
                                   of running live (with --failed <a,b,c>\n\
                                   naming the known-dead ranks, if any)\n\
           --runtime               run live on the cluster runtime instead\n\
                                   of the simulator (default --p 64)\n\
           --fail-fast             stop at the first violation\n\
           --json                  machine-readable violation report\n\
           exit status: 0 clean, 1 violations found, 2 usage/I-O error\n\
         forensics options (all run options, or --input + --failed):\n\
           --input <trace.jsonl>   analyze a recorded JSONL trace (first\n\
                                   rep of a multi-rep trace)\n\
           --failed <a,b,c>        dead ranks of the recorded trace\n\
                                   (default: inferred from drop events)\n\
           --json                  machine-readable forensics report\n\
           note: assumes the identity rank mapping — rejects\n\
           --root/--shuffle\n\
         perf subcommands:\n\
           perf snapshot --name <N> [run options] [--reps R]\n\
                                   run a small campaign, write BENCH_<N>.json\n\
                                   (--out FILE overrides the path)\n\
           perf diff <old.json> <new.json> [--threshold 0.05]\n\
                                   compare snapshots; exit 1 on regressions\n\
           perf bench [--quick] [--p N] [--reps R] [--rate F] [--seed S]\n\
                                   time the reference simulator campaign\n\
                                   (checked-sync binomial, rate faults) and\n\
                                   write results/BENCH_sim_throughput.json\n\
                                   (--out FILE overrides; metrics are\n\
                                   ns_per_rep / ns_per_event plus the\n\
                                   allocator-churn gauge arena_steady_state_reps,\n\
                                   lower is better; --quick = P 1024, 10 reps)\n\
           perf bench --runtime [--quick] [--seed S]\n\
                                   time cluster-runtime broadcasts (fault-free\n\
                                   plain binomial + 1%-fault corrected opp4) at\n\
                                   P 256/1024/4096 and write\n\
                                   results/BENCH_cluster_throughput.json\n\
                                   (--out FILE overrides; metrics are\n\
                                   ns_per_broadcast_p<P>_<config>, lower is\n\
                                   better; --quick = P 256/1024, 5 iters)\n\
           perf bench --pubsub [--quick] [--seed S]\n\
                                   time topic-multiplexed broadcasts: k in\n\
                                   {{1,4,16,64}} concurrent topics at\n\
                                   P 256/1024/4096, fault-free checked-sync\n\
                                   (Corollary 1 totals asserted per broadcast)\n\
                                   and 1%-fault corrected opp4, writing\n\
                                   results/BENCH_pubsub_throughput.json\n\
                                   (--out FILE overrides; metrics are\n\
                                   ns_per_broadcast_p<P>_k<K>_<ff|f1>, lower\n\
                                   is better; --quick = P 256/1024, k 1/4/16)\n\
         scale options (P=2^20 scaling study with Lemma 2-3 assertions):\n\
           ct scale [--quick] [--min-exp E] [--max-exp E] [--step-exp E]\n\
                    [--reps R] [--rate F] [--seed S] [--threads T]\n\
                                   sweep P = 2^min-exp .. 2^max-exp (default\n\
                                   2^12..2^20; --quick caps at 2^16), fault-free\n\
                                   and chunked-fault cells per correction\n\
                                   variant, assert checked-sync cells against\n\
                                   the Lemma 2/3 + Corollary 1 closed forms and\n\
                                   write results/BENCH_sim_scale.json (--out\n\
                                   FILE overrides; metrics are ns_per_event_p<P>\n\
                                   and peak_rss_kb, lower is better)\n\
                                   exit status: 0 all bounds hold, 1 violations,\n\
                                   2 usage/I-O error\n\
         pubsub options (topic-multiplexed broadcast walkthrough):\n\
           ct pubsub [--p N] [--k K] [--topics T] [--rounds R]\n\
                     [--faults N] [--seed S]\n\
                                   run T topics (default K; alternating plain\n\
                                   binomial and checked-sync corrected, varied\n\
                                   roots) for R rounds each with K broadcasts\n\
                                   in flight, print per-broadcast latency and\n\
                                   message totals plus aggregate throughput\n\
                                   exit status: 0 all broadcasts quiesced,\n\
                                   1 incomplete, 2 usage error\n\
         stats options (one-shot runtime-telemetry snapshot):\n\
           ct stats [run options] [--reps R]           simulator campaign\n\
           ct stats --runtime [run options] [--iters I]  cluster broadcasts\n\
           --dead <a,b,c>          exact dead ranks (instead of --faults/\n\
                                   --rate random placement)\n\
           --format <json|prom>    snapshot (default json) or Prometheus\n\
                                   text exposition\n\
           --output <FILE>         write to FILE instead of stdout\n\
           --postmortem <FILE>     flight-recorder dump path for --runtime\n\
                                   stalls (default ct-postmortem.json)\n\
           --series <FILE>         write the continuous sampler's\n\
                                   ct-series-v1 JSONL export (--runtime\n\
                                   only; sampling is always on there, at\n\
                                   the CT_SAMPLE_MS interval)\n\
           stalled cluster iterations print their stall report to stderr\n\
           exit status: 0 clean, 1 any cluster iteration stalled,\n\
           2 usage/I-O error (the snapshot is emitted either way)\n\
         top options (live cluster dashboard during a broadcast campaign):\n\
           ct top [run options] [--iters I] [--interval-ms MS]\n\
           --iters <I>             broadcasts to run (default 50)\n\
           --interval-ms <MS>      hub polling interval (default 500)\n\
           --listen <ADDR>         also serve GET /metrics, /series.jsonl\n\
                                   and /health while the campaign runs\n\
           --postmortem <FILE>     flight-recorder dump path for stalls\n\
                                   (default ct-postmortem.json)\n\
           exit status: 0 all broadcasts completed, 1 any incomplete,\n\
           2 usage/I-O error (the final summary is printed either way)\n\
         serve options (cluster campaign + HTTP monitoring endpoint):\n\
           ct serve [run options] [--iters I] [--listen ADDR]\n\
           --listen <ADDR>         bind address (default 127.0.0.1:9184)\n\
           --iters <I>             broadcasts to run (default 50)\n\
           --linger-ms <MS>        keep serving that long after the\n\
                                   campaign finishes (default 0)\n\
           --series <FILE>         write the ct-series-v1 JSONL export\n\
                                   on exit\n\
           --postmortem <FILE>     flight-recorder dump path for stalls\n\
                                   (default ct-postmortem.json)\n\
           routes: GET /metrics (Prometheus text exposition),\n\
                   /series.jsonl (sampler ring), /health (JSON; 503\n\
                   while a critical health rule is active)\n\
           exit status: 0 all broadcasts completed, 1 any incomplete,\n\
           2 usage/I-O error\n\
         monitor options (follow or replay a continuous series):\n\
           ct monitor --input <series.jsonl>     replay a recorded export\n\
           ct monitor --connect <ADDR> [--interval-ms MS]\n\
                                   follow a ct serve / ct top --listen\n\
                                   endpoint until it goes away (poll\n\
                                   interval default 1000 ms)\n\
           prints one line per sample window (delivery/coloring rates,\n\
           queue gauges, delivery sparkline) and every health event\n\
         postmortem options (render a flight-recorder dump):\n\
           ct postmortem <dump.json> [--json]\n\
           renders the per-stranded-rank causal reconstruction (last\n\
           poll, last mailbox push and its sender, pending timers) from\n\
           a ct-postmortem-v1 dump written on watchdog stall, worker\n\
           panic, or monitor violation; --json echoes the validated dump\n\
         env (cluster-runtime sizing and sampling):\n\
           CT_THREADS       worker threads         (default: available cores)\n\
           CT_MAILBOX_CAP   inline mailbox slots per rank    (default 64)\n\
           CT_WATCHDOG_MS   stall watchdog timeout in ms     (default 30000)\n\
           CT_FLIGHT_CAP    flight-recorder records per ring (default 4096)\n\
           CT_SAMPLE_MS     series sampler interval in ms    (default 250)"
    );
    std::process::exit(2);
}

struct Cli {
    args: Vec<String>,
}

impl Cli {
    fn value(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.value(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("cannot parse {key} value {v:?}");
                usage()
            }),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }
}

fn parse_tree(s: &str) -> TreeKind {
    let (name, order) = match s.strip_suffix("-inorder") {
        Some(base) => (base, Ordering::InOrder),
        None => (s, Ordering::Interleaved),
    };
    if name == "binomial" {
        TreeKind::Binomial { order }
    } else if name == "optimal" {
        TreeKind::Optimal { order }
    } else if let Some(k) = name.strip_prefix("kary") {
        TreeKind::Kary {
            k: k.parse().unwrap_or_else(|_| usage()),
            order,
        }
    } else if let Some(k) = name.strip_prefix("lame") {
        TreeKind::Lame {
            k: k.parse().unwrap_or_else(|_| usage()),
            order,
        }
    } else {
        eprintln!("unknown tree {s:?}");
        usage()
    }
}

fn parse_correction(s: &str) -> CorrectionKind {
    if s == "none" {
        CorrectionKind::None
    } else if s == "checked" {
        CorrectionKind::Checked
    } else if s == "failure-proof" {
        CorrectionKind::FailureProof
    } else if let Some(d) = s.strip_prefix("opp-plain") {
        CorrectionKind::Opportunistic {
            distance: d.parse().unwrap_or_else(|_| usage()),
        }
    } else if let Some(d) = s.strip_prefix("opp") {
        CorrectionKind::OpportunisticOptimized {
            distance: d.parse().unwrap_or_else(|_| usage()),
        }
    } else if let Some(t) = s.strip_prefix("delayed") {
        CorrectionKind::Delayed {
            delay: t.parse().unwrap_or_else(|_| usage()),
        }
    } else {
        eprintln!("unknown correction {s:?}");
        usage()
    }
}

fn build_spec(cli: &Cli) -> BroadcastSpec {
    let tree = parse_tree(cli.value("--tree").unwrap_or("binomial"));
    let correction = parse_correction(cli.value("--correction").unwrap_or("opp4"));
    let mut spec = if cli.flag("--acked") {
        BroadcastSpec::ack_tree(tree)
    } else if cli.value("--mode") == Some("sync") {
        BroadcastSpec::corrected_tree_sync(tree, correction)
    } else {
        BroadcastSpec::corrected_tree(tree, correction)
    };
    spec = spec.with_root(cli.parsed("--root", 0u32));
    if let Some(seed) = cli.value("--shuffle") {
        spec = spec.with_shuffle(seed.parse().unwrap_or_else(|_| usage()));
    }
    spec
}

fn faults(cli: &Cli, p: u32, seed: u64, root: u32) -> FaultPlan {
    if let Some(n) = cli.value("--faults") {
        let n: u32 = n.parse().unwrap_or_else(|_| usage());
        FaultPlan::random_count_protecting(p, n, seed, root).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    } else if let Some(r) = cli.value("--rate") {
        let r: f64 = r.parse().unwrap_or_else(|_| usage());
        let n = ((p as f64 * r).round() as u32).min(p - 1);
        FaultPlan::random_count_protecting(p, n, seed, root).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    } else {
        FaultPlan::none(p)
    }
}

/// Parse a comma-separated rank list (`--ranks 0,3,7`).
fn parse_rank_list(cli: &Cli, key: &str) -> Option<Vec<u32>> {
    cli.value(key).map(|s| {
        s.split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.parse().unwrap_or_else(|_| {
                    eprintln!("cannot parse {key} entry {t:?}");
                    usage()
                })
            })
            .collect()
    })
}

/// Does this event mention any of `ranks` (phase spans always pass)?
fn event_involves(event: &Event, ranks: &[u32]) -> bool {
    match event.kind {
        EventKind::SendStart { from, to, .. }
        | EventKind::Arrive { from, to, .. }
        | EventKind::Deliver { from, to, .. }
        | EventKind::DropDead { from, to, .. } => ranks.contains(&from) || ranks.contains(&to),
        EventKind::Colored { rank, .. } => ranks.contains(&rank),
        EventKind::PhaseBegin { .. } | EventKind::PhaseEnd { .. } => true,
    }
}

fn cmd_run(cli: &Cli) {
    let p: u32 = cli.parsed("--p", 1024);
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    let seed: u64 = cli.parsed("--seed", 1);
    let spec = build_spec(cli);
    let plan = faults(cli, p, seed, spec.root);
    let failed: Vec<u32> = plan.failed_ranks().collect();

    let sim = Simulation::builder(p, logp).faults(plan).seed(seed).build();
    if cli.flag("--trace") {
        let (out, trace) = sim.run_traced(&spec).expect("valid configuration");
        for e in &trace.events {
            println!("{e}");
        }
        report(&out, &failed);
    } else {
        let out = sim.run(&spec).expect("valid configuration");
        report(&out, &failed);
    }
}

fn report(out: &corrected_trees::sim::Outcome, failed: &[u32]) {
    println!("protocol            {}", out.label);
    println!("processes           {}", out.p);
    println!("failed ranks        {failed:?}");
    println!("all live colored    {}", out.all_live_colored());
    if !out.all_live_colored() {
        println!("uncolored live      {:?}", out.uncolored_live());
    }
    println!("coloring latency    {} steps", out.coloring_latency);
    println!("quiescence latency  {} steps", out.quiescence);
    println!(
        "messages            {} ({:.3}/process; tree {}, corr {}, gossip {}, ack {})",
        out.messages.total(),
        out.messages_per_process(),
        out.messages.tree,
        out.messages.correction,
        out.messages.gossip,
        out.messages.ack,
    );
    println!("colored by corr.    {}", out.correction_colored());
    println!("max ring gap        {}", out.max_gap());
}

fn cmd_trace(cli: &Cli) {
    let p: u32 = cli.parsed("--p", 16);
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    let seed: u64 = cli.parsed("--seed", 1);
    let spec = build_spec(cli);
    let plan = faults(cli, p, seed, spec.root);
    let failed: Vec<u32> = plan.failed_ranks().collect();

    let mut sink = VecSink::new();
    let out = Simulation::builder(p, logp)
        .faults(plan)
        .seed(seed)
        .build()
        .run_with_sink(&spec, &mut sink)
        .expect("valid configuration");

    let ranks = parse_rank_list(cli, "--ranks");
    match cli.value("--format").unwrap_or("ascii") {
        "ascii" => {
            let trace = Trace::from_events(&sink.events);
            print!(
                "{}",
                trace.ascii_timeline_ranks(p, logp.o(), ranks.as_deref())
            );
            println!();
            report(&out, &failed);
        }
        "jsonl" => {
            for e in &sink.events {
                if ranks.as_deref().is_none_or(|r| event_involves(e, r)) {
                    println!("{e}");
                }
            }
        }
        "chrome" => println!("{}", chrome_trace(&sink.events, logp.o())),
        other => {
            eprintln!("unknown trace format {other:?}");
            usage()
        }
    }
}

fn cmd_tree(cli: &Cli) {
    let p: u32 = cli.parsed("--p", 16);
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    let kind = parse_tree(cli.value("--tree").unwrap_or("binomial"));
    let tree = kind.build(p, &logp).expect("valid tree");
    let s = stats::tree_stats(&tree);
    println!(
        "{kind}: P={p}, height {}, leaves {}, max fan-out {}, avg inner fan-out {:.2}",
        s.height, s.leaves, s.max_fanout, s.avg_inner_fanout
    );
    println!(
        "interleaved (Definition 1): {}",
        interleaving::is_interleaved(&tree)
    );
    println!(
        "fault-free dissemination deadline: {} steps",
        tree.dissemination_deadline(&logp)
    );
    for r in 0..p {
        if !tree.children(r).is_empty() {
            println!("  {r:>4} → {:?}", tree.children(r));
        }
    }
}

fn cmd_sweep(cli: &Cli) {
    let p: u32 = cli.parsed("--p", 1024);
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    let reps: u32 = cli.parsed("--reps", 50);
    let seed0: u64 = cli.parsed("--seed", 1);
    let spec = build_spec(cli);
    let mut quiescence = Vec::with_capacity(reps as usize);
    let mut msgs = Vec::with_capacity(reps as usize);
    let mut incomplete = 0u32;
    for rep in 0..reps {
        let seed = seed0 + rep as u64;
        let plan = faults(cli, p, seed, spec.root);
        let out = Simulation::builder(p, logp)
            .faults(plan)
            .seed(seed)
            .build()
            .run(&spec)
            .expect("valid configuration");
        if !out.all_live_colored() {
            incomplete += 1;
        }
        quiescence.push(out.quiescence.steps() as f64);
        msgs.push(out.messages_per_process());
    }
    let q = Summary::of(&quiescence);
    let m = Summary::of(&msgs);
    println!("protocol   {}", spec);
    println!("reps       {reps} ({} without full coloring)", incomplete);
    println!(
        "quiescence mean {:.2}  p05 {:.0}  median {:.0}  p95 {:.0}  max {:.0}",
        q.mean, q.p05, q.median, q.p95, q.max
    );
    println!(
        "msgs/proc  mean {:.3}  p05 {:.3}  p95 {:.3}",
        m.mean, m.p05, m.p95
    );
}

fn payload_tag(p: Payload) -> &'static str {
    match p {
        Payload::Tree => "tree",
        Payload::Gossip { .. } => "gossip",
        Payload::Correction => "correction",
        Payload::Ack => "ack",
    }
}

fn cmd_analyze(cli: &Cli) {
    // The scheduler view reads a telemetry snapshot, not an event
    // trace — handle it before any trace parsing.
    if cli.value("--view") == Some("scheduler") {
        let Some(path) = cli.value("--input") else {
            eprintln!(
                "--view scheduler requires --input <snapshot.json> (write one with ct stats)"
            );
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        let summary = SchedulerSummary::from_snapshot_json(text.trim_end()).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        if cli.flag("--json") {
            // Schema-validated round trip of the snapshot itself.
            println!("{}", text.trim_end());
        } else {
            print!("{}", summary.render_text());
        }
        return;
    }
    // Likewise for the series view: it reads a sampler JSONL export,
    // not an event trace.
    if cli.value("--view") == Some("series") {
        let Some(path) = cli.value("--input") else {
            eprintln!(
                "--view series requires --input <series.jsonl> (write one with \
                 ct serve --series or ct stats --runtime --series)"
            );
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        let summary = SeriesSummary::from_jsonl(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        if cli.flag("--json") {
            // Schema-validated round trip of the export itself.
            print!("{text}");
        } else {
            print!("{}", summary.render_text());
        }
        return;
    }
    // Likewise for the postmortem view: it reads a flight-recorder
    // dump, not an event trace.
    if cli.value("--view") == Some("postmortem") {
        let Some(path) = cli.value("--input") else {
            eprintln!(
                "--view postmortem requires --input <dump.json> (written on a stall by \
                 ct stats --runtime / ct top / ct check --runtime)"
            );
            std::process::exit(2);
        };
        render_postmortem(cli, path);
        return;
    }
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    let mut cfg = AnalyzeConfig::new(logp);
    let events = if let Some(path) = cli.value("--input") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        parse_jsonl(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        })
    } else {
        // No input file: run the configuration live, exactly like
        // `ct run`, and analyze the events it produces.
        let p: u32 = cli.parsed("--p", 1024);
        let seed: u64 = cli.parsed("--seed", 1);
        let spec = build_spec(cli);
        let plan = faults(cli, p, seed, spec.root);
        cfg = cfg.with_p(p);
        if let Some(start) = Variant::Tree(spec).sync_start(p, &logp) {
            cfg = cfg.with_sync_start(start.steps());
        }
        let (_, events) = Simulation::builder(p, logp)
            .faults(plan)
            .seed(seed)
            .build()
            .run_with_events(&spec)
            .expect("valid configuration");
        events
    };
    if let Some(t) = cli.value("--sync-start") {
        cfg = cfg.with_sync_start(t.parse().unwrap_or_else(|_| usage()));
    }
    let ta = analyze_trace(&events, &cfg);
    match cli.value("--view").unwrap_or("summary") {
        "summary" => {
            let s = AnalysisSummary::from_trace(&ta);
            if cli.flag("--json") {
                println!("{}", s.to_json());
            } else {
                print!("{}", s.render_text());
                for (i, rep) in ta.reps.iter().enumerate() {
                    if let Some(b) = &rep.bounds {
                        println!(
                            "rep {i}: L_SCC observed {} vs bounds [{}, {}] (g_max {}) — {}",
                            b.observed,
                            b.lower,
                            b.upper,
                            b.g_max,
                            if b.violated() { "VIOLATED" } else { "ok" }
                        );
                    }
                }
            }
        }
        "critical-path" => {
            for (i, rep) in ta.reps.iter().enumerate() {
                let cp = &rep.critpath;
                println!(
                    "rep {i}: completion {} = o {} + L {} + idle {} over {} hops \
                     (dissemination {}, correction {})",
                    cp.len,
                    cp.o_steps,
                    cp.l_steps,
                    cp.idle_steps,
                    cp.hops,
                    cp.diss_steps,
                    cp.corr_steps
                );
                for s in &cp.segments {
                    println!(
                        "  [{:>6}..{:>6}]  {:<4}  rank {:<6}  {}",
                        s.start,
                        s.end,
                        s.class.label(),
                        s.rank,
                        payload_tag(s.payload)
                    );
                }
            }
        }
        "utilization" => {
            let ranks = parse_rank_list(cli, "--ranks");
            for (i, rep) in ta.reps.iter().enumerate() {
                println!("rep {i}: completion {}", rep.completion);
                for r in 0..rep.utilization.busy.len() {
                    if let Some(keep) = &ranks {
                        if !keep.contains(&(r as u32)) {
                            continue;
                        }
                    }
                    let frac = rep.utilization.busy_frac(r);
                    let bar = "#".repeat((frac * 40.0).round() as usize);
                    println!("  rank {r:>5}  busy {:>5.1}%  {bar}", frac * 100.0);
                }
            }
        }
        other => {
            eprintln!("unknown analyze view {other:?}");
            usage()
        }
    }
}

/// Shared body of `ct postmortem` and `ct analyze --view postmortem`:
/// parse a `ct-postmortem-v1` dump and render the causal
/// reconstruction (or echo the validated JSON under `--json`).
fn render_postmortem(cli: &Cli, path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    let report = PostmortemReport::from_json(text.trim_end()).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    if cli.flag("--json") {
        // Schema-validated round trip of the dump itself.
        println!("{}", text.trim_end());
    } else {
        print!("{}", report.render_text());
    }
}

/// `ct postmortem <dump.json>` — render a flight-recorder dump written
/// on watchdog stall, worker panic, or monitor violation.
fn cmd_postmortem(cli: &Cli) {
    let Some(path) = cli.args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("ct postmortem needs a dump path: ct postmortem <dump.json> [--json]");
        std::process::exit(2);
    };
    render_postmortem(cli, path);
}

fn read_trace(path: &str) -> Vec<Event> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    parse_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    })
}

/// `ct check` — run the streaming invariant monitor over a recorded
/// trace (`--input`), a live simulator run (default) or a live cluster
/// run (`--runtime`). Exit 1 when any invariant is violated.
fn cmd_check(cli: &Cli) {
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    let fail_fast = cli.flag("--fail-fast");
    let report = if let Some(path) = cli.value("--input") {
        let events = read_trace(path);
        let mut cfg = MonitorConfig::new().with_logp(logp);
        if let Some(p) = cli.value("--p") {
            cfg = cfg.with_p(p.parse().unwrap_or_else(|_| usage()));
        }
        if let Some(failed) = parse_rank_list(cli, "--failed") {
            let p: u32 = cli.parsed("--p", failed.iter().max().map_or(1, |&m| m + 1));
            let mut mask = vec![false; p as usize];
            for r in failed {
                if (r as usize) < mask.len() {
                    mask[r as usize] = true;
                }
            }
            cfg = cfg.with_failed(mask);
        }
        if fail_fast {
            cfg = cfg.with_fail_fast();
        }
        MonitorSink::check(&events, &cfg)
    } else {
        let runtime = cli.flag("--runtime");
        // Cluster broadcasts run in real time (wall-clock waits, one
        // monitored iteration) — default smaller than the simulator's.
        let p: u32 = cli.parsed("--p", if runtime { 64 } else { 1024 });
        let seed: u64 = cli.parsed("--seed", 1);
        let spec = build_spec(cli);
        let plan = faults(cli, p, seed, spec.root);
        let mut cfg = MonitorConfig::new()
            .with_p(p)
            .with_logp(logp)
            .with_failed(plan.mask().to_vec());
        if fail_fast {
            cfg = cfg.with_fail_fast();
        }
        let mut monitor = MonitorSink::new(cfg);
        if runtime {
            let mask = plan.mask().to_vec();
            let pm_path =
                std::path::PathBuf::from(cli.value("--postmortem").unwrap_or("ct-postmortem.json"));
            let mut cluster = Cluster::with_config(
                p,
                logp,
                ClusterConfig::new()
                    .flight(default_flight_cap())
                    .postmortem(pm_path.clone()),
            );
            if let Err(e) = cluster.run_broadcast_observed(&spec, &mask, seed, &mut monitor) {
                eprintln!("cluster run failed: {e}");
                std::process::exit(2);
            }
            let report = monitor.finish();
            // Invariant violations freeze the flight recorder too: the
            // ring tail around the violation is exactly the evidence a
            // post-mortem needs.
            if !report.is_ok()
                && cluster
                    .capture_postmortem("monitor_violation", None)
                    .is_some()
            {
                eprintln!("[postmortem {}]", pm_path.display());
            }
            report
        } else {
            Simulation::builder(p, logp)
                .faults(plan)
                .seed(seed)
                .build()
                .run_with_sink(&spec, &mut monitor)
                .expect("valid configuration");
            monitor.finish()
        }
    };
    if cli.flag("--json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if !report.is_ok() {
        std::process::exit(1);
    }
}

/// `ct forensics` — join an event trace with the dissemination tree and
/// fault mask: per-failure orphaned subtrees, rescue provenance and the
/// run-level waste accounting.
fn cmd_forensics(cli: &Cli) {
    if cli.value("--root").is_some() || cli.value("--shuffle").is_some() {
        eprintln!(
            "ct forensics assumes the identity rank mapping (tree rank = process rank); \
             --root and --shuffle are not supported"
        );
        std::process::exit(2);
    }
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    let kind = parse_tree(cli.value("--tree").unwrap_or("binomial"));
    let (events, p, mask) = if let Some(path) = cli.value("--input") {
        let all = read_trace(path);
        // Forensics reconstructs one broadcast; of a multi-rep campaign
        // trace, take the first repetition.
        let events = split_reps(&all).into_iter().next().unwrap_or_default();
        let p: u32 = cli.parsed("--p", infer_p(&events));
        let mut mask = vec![false; p as usize];
        match parse_rank_list(cli, "--failed") {
            Some(failed) => {
                for r in failed {
                    if (r as usize) < mask.len() {
                        mask[r as usize] = true;
                    }
                }
            }
            None => {
                // No explicit mask: a fail-stop trace names its dead
                // ranks as drop targets.
                for e in &events {
                    if let EventKind::DropDead { to, .. } = e.kind {
                        if (to as usize) < mask.len() {
                            mask[to as usize] = true;
                        }
                    }
                }
            }
        }
        (events, p, mask)
    } else {
        let p: u32 = cli.parsed("--p", 64);
        let seed: u64 = cli.parsed("--seed", 1);
        let spec = build_spec(cli);
        let plan = faults(cli, p, seed, spec.root);
        let mask = plan.mask().to_vec();
        let mut sink = VecSink::new();
        Simulation::builder(p, logp)
            .faults(plan)
            .seed(seed)
            .build()
            .run_with_sink(&spec, &mut sink)
            .expect("valid configuration");
        (sink.events, p, mask)
    };
    let tree = kind.build(p, &logp).expect("valid tree");
    let report = analyze_forensics(&events, &tree, &mask, &logp);
    if cli.flag("--json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
}

/// Thread-per-rank baseline for `ct perf bench --runtime`, measured on
/// this workload (fault-free plain binomial broadcasts, P=256) at the
/// pre-M:N-scheduler revision of `ct-runtime`: mean of repeated runs at
/// 443.9 and 424.5 broadcasts/sec, 255 messages per broadcast. Kept so
/// the checked-in snapshot records the speedup the scheduler rewrite
/// bought, against identical message totals.
const THREAD_PER_RANK_P256_BPS: f64 = 434.2;
const THREAD_PER_RANK_P256_MSGS: u64 = 255;

/// `ct perf bench --runtime` — time cluster-runtime broadcast sweeps
/// (fault-free plain binomial and 1%-fault corrected opp4 binomial) at
/// P ∈ {256, 1024, 4096} (`--quick`: {256, 1024}) and write a
/// `BenchSnapshot` with ns-per-broadcast metrics (lower is better).
fn cmd_perf_bench_runtime(cli: &Cli) {
    let quick = cli.flag("--quick");
    let seed0: u64 = cli.parsed("--seed", 1);
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    // (p, warmup, timed iterations): fewer iterations at larger P keep
    // the full sweep in seconds even on a single-core machine.
    let sweep: &[(u32, u32, u32)] = if quick {
        &[(256, 1, 5), (1024, 1, 5)]
    } else {
        &[(256, 3, 30), (1024, 2, 10), (4096, 1, 5)]
    };
    let cfg = ClusterConfig::new();
    let max_p = sweep.iter().map(|&(p, _, _)| p).max().unwrap_or(256);
    let hub = Arc::new(TelemetryHub::new(cfg.threads, max_p as usize));
    let mut snapshot = BenchSnapshot::new("cluster_throughput")
        .with_host_provenance()
        .with_provenance("logp", &logp.to_string())
        .with_provenance("seed0", &seed0.to_string())
        .with_provenance("threads", &cfg.threads.to_string())
        .with_provenance("mailbox_capacity", &cfg.mailbox_capacity.to_string())
        .with_provenance("quick", &quick.to_string())
        .with_provenance(
            "baseline_thread_per_rank_p256_bps",
            &format!("{THREAD_PER_RANK_P256_BPS:.1}"),
        )
        .with_provenance(
            "baseline_thread_per_rank_p256_msgs_per_broadcast",
            &THREAD_PER_RANK_P256_MSGS.to_string(),
        );
    for &(p, warmup, iters) in sweep {
        let mut cluster = Cluster::with_config(p, logp, cfg.clone().telemetry(Arc::clone(&hub)));
        let faults = (p / 100).max(1);
        let plan = FaultPlan::random_count_protecting(p, faults, seed0, 0).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        let configs: [(&str, BroadcastSpec, Vec<bool>); 2] = [
            (
                "faultfree",
                BroadcastSpec::plain_tree(TreeKind::BINOMIAL),
                vec![false; p as usize],
            ),
            (
                "faulty",
                BroadcastSpec::corrected_tree(
                    TreeKind::BINOMIAL,
                    CorrectionKind::OpportunisticOptimized { distance: 4 },
                ),
                plan.mask().to_vec(),
            ),
        ];
        for (label, spec, dead) in &configs {
            let mut run = |i: u32| {
                let report = cluster
                    .run_broadcast(spec, dead, seed0 + u64::from(i))
                    .unwrap_or_else(|e| {
                        eprintln!("cluster run failed: {e}");
                        std::process::exit(2);
                    });
                if !report.completed {
                    eprintln!(
                        "bench broadcast did not complete (p={p} {label}, \
                         uncolored {:?})",
                        report.uncolored
                    );
                    std::process::exit(2);
                }
                report.messages
            };
            for i in 0..warmup {
                run(i);
            }
            let start = std::time::Instant::now();
            let mut messages = 0u64;
            for i in 0..iters {
                messages += run(warmup + i);
            }
            let wall = start.elapsed();
            let bps = f64::from(iters) / wall.as_secs_f64();
            let key = format!("p{p}_{label}");
            snapshot = snapshot
                .with_metric(
                    &format!("ns_per_broadcast_{key}"),
                    wall.as_nanos() as f64 / f64::from(iters.max(1)),
                )
                .with_provenance(&format!("broadcasts_per_sec_{key}"), &format!("{bps:.2}"))
                .with_provenance(&format!("total_messages_{key}"), &messages.to_string())
                .with_provenance(&format!("iterations_{key}"), &iters.to_string());
            println!("[bench cluster_throughput] p={p} {label}: {bps:.2} broadcasts/sec");
            if p == 256 && *label == "faultfree" {
                snapshot = snapshot.with_provenance(
                    "speedup_vs_thread_per_rank_p256",
                    &format!("{:.2}", bps / THREAD_PER_RANK_P256_BPS),
                );
            }
        }
    }
    let path = std::path::PathBuf::from(
        cli.value("--out")
            .map(str::to_owned)
            .unwrap_or_else(|| "results/BENCH_cluster_throughput.json".to_owned()),
    );
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match snapshot.write(&path) {
        Ok(()) => println!("[bench cluster_throughput] -> {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    let manifest = RunManifest::new("cluster_throughput")
        .logp(logp)
        .seed(seed0)
        .with_extra("quick", quick.to_string())
        .with_extra_json("telemetry", hub.snapshot().with_source("cluster").to_json())
        .stamped();
    match manifest.write_next_to(&path) {
        Ok(mpath) => println!("[telemetry manifest {}]", mpath.display()),
        Err(e) => eprintln!("could not write manifest for {}: {e}", path.display()),
    }
}

/// `ct perf bench --pubsub` — the topic-multiplexed throughput sweep:
/// k ∈ {1, 4, 16, 64} concurrent topics at P ∈ {256, 1024, 4096},
/// fault-free checked-sync (Corollary 1 totals asserted) and 1%-fault
/// corrected opp4, written as `BENCH_pubsub_throughput.json`.
fn cmd_perf_bench_pubsub(cli: &Cli) {
    let quick = cli.flag("--quick");
    let seed0: u64 = cli.parsed("--seed", 1);
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    let bench = run_pubsub_bench(quick, seed0, logp);
    for c in &bench.cells {
        println!(
            "[bench pubsub_throughput] {}: {:.2} broadcasts/sec \
             ({} broadcasts, {} messages)",
            c.key(),
            c.broadcasts_per_sec(),
            c.broadcasts,
            c.messages
        );
    }
    let headline_p = bench.cells.iter().map(|c| c.p).max().unwrap_or(0);
    for k in [4usize, 16, 64] {
        if let Some(s) = bench.speedup_vs_k1(headline_p, k) {
            println!("[bench pubsub_throughput] p={headline_p} k={k} vs k=1: {s:.2}x");
        }
    }
    let snapshot = bench.snapshot();
    let path = std::path::PathBuf::from(
        cli.value("--out")
            .map(str::to_owned)
            .unwrap_or_else(|| "results/BENCH_pubsub_throughput.json".to_owned()),
    );
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match snapshot.write(&path) {
        Ok(()) => println!("[bench pubsub_throughput] -> {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    let manifest = RunManifest::new("pubsub_throughput")
        .logp(logp)
        .seed(seed0)
        .with_extra("quick", quick.to_string())
        .stamped();
    match manifest.write_next_to(&path) {
        Ok(mpath) => println!("[telemetry manifest {}]", mpath.display()),
        Err(e) => eprintln!("could not write manifest for {}: {e}", path.display()),
    }
}

/// `ct pubsub` — walkthrough: run a small multiplexed topic fleet and
/// print every broadcast's latency and message total, then the
/// aggregate throughput the pipelining achieved.
fn cmd_pubsub(cli: &Cli) {
    let p: u32 = cli.parsed("--p", 256);
    let k: usize = cli.parsed("--k", 4);
    let topics: usize = cli.parsed("--topics", k);
    let rounds: usize = cli.parsed("--rounds", 2);
    let seed: u64 = cli.parsed("--seed", 1);
    let n_faults: u32 = cli.parsed("--faults", 0);
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    if k == 0 || topics == 0 || rounds == 0 {
        eprintln!("--k, --topics and --rounds must be positive");
        std::process::exit(2);
    }
    let mut table = TopicTable::new();
    for t in 0..topics {
        let root = (t as u32 * 31) % p;
        // Alternate the two flagship configurations so the walkthrough
        // shows barrier-bound and dissemination-bound topics mixing.
        // Plain trees cannot survive faults (a dead rank orphans its
        // subtree), so faulty walkthroughs upgrade them to
        // opportunistic correction.
        let spec = if t % 2 == 0 {
            if n_faults > 0 {
                BroadcastSpec::corrected_tree(
                    TreeKind::BINOMIAL,
                    CorrectionKind::OpportunisticOptimized { distance: 4 },
                )
                .with_root(root)
            } else {
                BroadcastSpec::plain_tree(TreeKind::BINOMIAL).with_root(root)
            }
        } else {
            let mut s = BroadcastSpec::corrected_tree_sync(
                TreeKind::BINOMIAL,
                CorrectionKind::checked_paced(&logp, 4),
            )
            .with_root(root);
            s.sync_start_override = Some(sync_barrier_us(p));
            s
        };
        let mut topic = Topic::new(format!("topic-{t}"), spec, p, seed + t as u64);
        if n_faults > 0 {
            let plan = FaultPlan::random_count_protecting(p, n_faults, seed + t as u64, root)
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            topic = topic.with_dead(plan.mask().to_vec());
        }
        table.push(topic);
    }
    let mut cluster = Cluster::new(p, logp);
    let report = cluster
        .run_pubsub(&table, &PubsubOptions { k, rounds })
        .unwrap_or_else(|e| {
            eprintln!("pubsub run failed: {e}");
            std::process::exit(2);
        });
    println!("[pubsub] p={p} topics={topics} k={k} rounds={rounds} faults={n_faults}/topic");
    for o in &report.outcomes {
        let label = table.get(o.topic).map(|t| t.label.as_str()).unwrap_or("?");
        println!(
            "  bcast {:>3}  {label:<10} round {}  {:>9.3} ms  {:>6} msgs  {}",
            o.id,
            o.round,
            o.latency.as_secs_f64() * 1e3,
            o.messages,
            if o.completed {
                "ok".to_owned()
            } else {
                format!("INCOMPLETE ({} uncolored)", o.uncolored.len())
            }
        );
    }
    println!(
        "[pubsub] {} broadcasts in {:.3} s -> {:.2} broadcasts/sec",
        report.outcomes.len(),
        report.elapsed.as_secs_f64(),
        report.broadcasts_per_sec()
    );
    if !report.completed() {
        std::process::exit(1);
    }
}

/// Dead-rank mask for telemetry commands: exact ranks via `--dead`,
/// otherwise the usual random `--faults`/`--rate` placement.
fn dead_mask(cli: &Cli, p: u32, seed: u64, root: u32) -> Vec<bool> {
    match parse_rank_list(cli, "--dead") {
        Some(dead) => {
            let mut mask = vec![false; p as usize];
            for r in dead {
                if r >= p {
                    eprintln!("--dead rank {r} out of range (p={p})");
                    std::process::exit(2);
                }
                mask[r as usize] = true;
            }
            mask
        }
        None => faults(cli, p, seed, root).mask().to_vec(),
    }
}

/// Render a telemetry snapshot in the requested `--format` and write it
/// to `--output` (or stdout).
fn emit_snapshot(cli: &Cli, snapshot: &TelemetrySnapshot) {
    let text = match cli.value("--format").unwrap_or("json") {
        "json" => snapshot.to_json() + "\n",
        "prom" => snapshot.render_prometheus(),
        other => {
            eprintln!("unknown stats format {other:?} (want json or prom)");
            usage()
        }
    };
    match cli.value("--output") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("could not write {path}: {e}");
                std::process::exit(2);
            }
            println!("[stats {path}]");
        }
        None => print!("{text}"),
    }
}

/// `ct stats` — run a short campaign with telemetry enabled and emit
/// one snapshot: a simulator campaign by default, cluster-runtime
/// broadcasts with `--runtime`. Stalled cluster iterations print their
/// structured stall report to stderr and write a flight-recorder
/// postmortem dump; the command still emits the snapshot — the counters
/// of a stalled run are the diagnosis — then exits 1.
fn cmd_stats(cli: &Cli) {
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    let seed: u64 = cli.parsed("--seed", 1);
    let mut stalled = 0u32;
    let snapshot = if cli.flag("--runtime") {
        let p: u32 = cli.parsed("--p", 64);
        let iters: u32 = cli.parsed("--iters", 3);
        let spec = build_spec(cli);
        let mask = dead_mask(cli, p, seed, spec.root);
        let pm_path =
            std::path::PathBuf::from(cli.value("--postmortem").unwrap_or("ct-postmortem.json"));
        let base = ClusterConfig::new();
        let hub = Arc::new(TelemetryHub::new(base.threads, p as usize));
        // The continuous sampler is always on for runtime stats: its
        // health rules are exactly the early warning a stalled
        // iteration needs, and the export lands in --series.
        let cfg = base
            .telemetry(Arc::clone(&hub))
            .sample(std::time::Duration::from_millis(default_sample_ms()))
            .flight(default_flight_cap())
            .postmortem(pm_path.clone());
        let mut cluster = Cluster::with_config(p, logp, cfg);
        for i in 0..iters {
            let report = cluster
                .run_broadcast(&spec, &mask, seed + u64::from(i))
                .unwrap_or_else(|e| {
                    eprintln!("cluster run failed: {e}");
                    std::process::exit(2);
                });
            for e in &report.health {
                eprintln!(
                    "[health {} {} t={}ms] {}",
                    e.severity.name(),
                    e.rule,
                    e.t_ms,
                    e.message
                );
            }
            if let Some(stall) = &report.stall {
                stalled += 1;
                eprint!("{}", stall.render_text());
                if report.postmortem.is_some() {
                    eprintln!("[postmortem {}]", pm_path.display());
                }
            }
        }
        if let Some(path) = cli.value("--series") {
            write_series(path, cluster.series().as_deref());
        }
        hub.snapshot().with_source("cluster")
    } else {
        let p: u32 = cli.parsed("--p", 256);
        let reps: u32 = cli.parsed("--reps", 5);
        let fault_spec = if let Some(dead) = parse_rank_list(cli, "--dead") {
            FaultSpec::Ranks(dead)
        } else if let Some(n) = cli.value("--faults") {
            FaultSpec::Count(n.parse().unwrap_or_else(|_| usage()))
        } else if let Some(r) = cli.value("--rate") {
            FaultSpec::Rate(r.parse().unwrap_or_else(|_| usage()))
        } else {
            FaultSpec::None
        };
        let hub = Arc::new(TelemetryHub::new(1, p as usize));
        let campaign = Campaign::new(Variant::Tree(build_spec(cli)), p, logp)
            .with_faults(fault_spec)
            .with_reps(reps)
            .with_seed(seed)
            .with_telemetry(Arc::clone(&hub));
        if let Err(e) = campaign.run() {
            eprintln!("campaign failed: {e}");
            std::process::exit(2);
        }
        hub.snapshot().with_source("sim")
    };
    emit_snapshot(cli, &snapshot);
    // Stalls still emit the snapshot first (the counters of a stalled
    // run are the diagnosis) but flag the failure via exit status.
    if stalled > 0 {
        std::process::exit(1);
    }
}

/// Write a sampler's `ct-series-v1` JSONL export to `path` (exit 2 on
/// I/O failure or when sampling was not enabled on the run).
fn write_series(path: &str, store: Option<&SeriesStore>) {
    let Some(store) = store else {
        eprintln!("--series: continuous sampling is not enabled on this run");
        std::process::exit(2);
    };
    if let Err(e) = std::fs::write(path, store.export_jsonl()) {
        eprintln!("could not write {path}: {e}");
        std::process::exit(2);
    }
    println!("[series {path}]");
}

/// One frame of the `ct top` dashboard, rendered from one sample
/// window (counter deltas over a monotonic interval — the same math
/// the continuous sampler uses) plus the cumulative snapshot behind
/// it.
fn render_top_frame(sample: &SeriesSample, totals: &TelemetrySnapshot, clear: bool) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    if clear {
        out.push_str("\x1b[2J\x1b[H");
    }
    let _ = writeln!(
        out,
        "ct top — source={} workers={} ranks={}",
        sample.source, sample.workers, sample.ranks
    );
    let _ = writeln!(
        out,
        "  rates/s: quanta {:.0} | batches {:.0} | delivered {:.0} | colored {:.0} | timer fires {:.0}",
        sample.rate("sched.quanta"),
        sample.rate("sched.batches"),
        sample.rate("msgs.delivered"),
        sample.rate("coord.colored"),
        sample.rate("timer.fires"),
    );
    let _ = writeln!(
        out,
        "  queues: runq {} | pending timers {} | mailbox hwm {} | spills {} | stale quanta {} | rechecks {}",
        sample.gauge("runq.depth"),
        sample.gauge("timers.pending"),
        sample.gauge("mailbox.hwm"),
        totals.counter("mailbox.spills"),
        totals.counter("sched.stale_quanta"),
        totals.counter("sched.lost_wakeup_rechecks"),
    );
    let dt_us = sample.dt_ms.max(1) as f64 * 1e3;
    for (w, busy_us) in sample.worker_busy_us.iter().enumerate() {
        let frac = (*busy_us as f64 / dt_us).min(1.0);
        let bar = "#".repeat((frac * 40.0).round() as usize);
        let _ = writeln!(out, "  worker {w:>3}  busy {:>5.1}%  {bar}", frac * 100.0);
    }
    out
}

/// Bind the monitoring endpoint over `hub` (and the sampler store,
/// when sampling is on). Exits 2 when the address is unusable.
fn spawn_monitor_server(
    addr: &str,
    hub: Arc<TelemetryHub>,
    store: Option<Arc<SeriesStore>>,
) -> HttpServer {
    let server =
        HttpServer::spawn(addr, monitor_handler(hub, "cluster", store)).unwrap_or_else(|e| {
            eprintln!("could not bind {addr}: {e}");
            std::process::exit(2);
        });
    println!(
        "[serving http://{} — GET /metrics /series.jsonl /health]",
        server.addr()
    );
    server
}

/// `ct top` — run a cluster broadcast campaign on a background thread
/// and poll the telemetry hub live at `--interval-ms` (each frame is a
/// [`SeriesSample`] window over a monotonic clock), then print the
/// final scheduler summary. With `--listen` the hub is also exposed
/// over HTTP while the campaign runs.
fn cmd_top(cli: &Cli) {
    use std::io::IsTerminal as _;

    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    let p: u32 = cli.parsed("--p", 256);
    let iters: u32 = cli.parsed("--iters", 50);
    let interval_ms: u64 = cli.parsed("--interval-ms", 500);
    let seed: u64 = cli.parsed("--seed", 1);
    let spec = build_spec(cli);
    let mask = dead_mask(cli, p, seed, spec.root);
    let pm_path =
        std::path::PathBuf::from(cli.value("--postmortem").unwrap_or("ct-postmortem.json"));
    let base = ClusterConfig::new();
    let hub = Arc::new(TelemetryHub::new(base.threads, p as usize));
    let cfg = base
        .telemetry(Arc::clone(&hub))
        .sample(std::time::Duration::from_millis(default_sample_ms()))
        .flight(default_flight_cap())
        .postmortem(pm_path.clone());
    let mut cluster = Cluster::with_config(p, logp, cfg);
    let store = cluster.series();
    let _server = cli
        .value("--listen")
        .map(|addr| spawn_monitor_server(addr, Arc::clone(&hub), store.clone()));
    let campaign = std::thread::spawn(move || {
        let mut incomplete = 0u32;
        for i in 0..iters {
            let report = cluster
                .run_broadcast(&spec, &mask, seed + u64::from(i))
                .unwrap_or_else(|e| {
                    eprintln!("cluster run failed: {e}");
                    std::process::exit(2);
                });
            if !report.completed {
                incomplete += 1;
                if let Some(stall) = &report.stall {
                    eprint!("{}", stall.render_text());
                }
                if report.postmortem.is_some() {
                    eprintln!("[postmortem {}]", pm_path.display());
                }
            }
        }
        incomplete
    });
    let clear = std::io::stdout().is_terminal();
    let started = std::time::Instant::now();
    let mut prev = hub.snapshot().with_source("cluster");
    let mut prev_ms = 0u64;
    let mut seq = 0u64;
    let mut health_mark = 0usize;
    while !campaign.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
        let snap = hub.snapshot().with_source("cluster");
        let t_ms = started.elapsed().as_millis() as u64;
        let sample = SeriesSample::between(&prev, &snap, seq, t_ms, t_ms.saturating_sub(prev_ms));
        print!("{}", render_top_frame(&sample, &snap, clear));
        if let Some(s) = &store {
            let fired = s.events_from(health_mark);
            health_mark += fired.len();
            for e in &fired {
                println!(
                    "  [health {} {} t={}ms] {}",
                    e.severity.name(),
                    e.rule,
                    e.t_ms,
                    e.message
                );
            }
        }
        prev = snap;
        prev_ms = t_ms;
        seq += 1;
    }
    let incomplete = campaign.join().unwrap_or_else(|_| {
        eprintln!("campaign thread panicked");
        std::process::exit(2);
    });
    let snap = hub.snapshot().with_source("cluster");
    let summary = SchedulerSummary::from_snapshot_json(&snap.to_json())
        .expect("own snapshot is schema-valid");
    println!("campaign done: {iters} broadcasts, {incomplete} incomplete");
    print!("{}", summary.render_text());
    // The summary is always printed; incomplete broadcasts flag the
    // failure via exit status for scripted health checks.
    if incomplete > 0 {
        std::process::exit(1);
    }
}

/// `ct serve` — run a cluster broadcast campaign with continuous
/// sampling on, exposing `GET /metrics`, `/series.jsonl` and `/health`
/// over a tiny built-in HTTP server while it runs (and `--linger-ms`
/// longer, so scrapers can collect the final state).
fn cmd_serve(cli: &Cli) {
    let logp: LogP = cli
        .value("--logp")
        .map(|s| s.parse().expect("valid LogP string"))
        .unwrap_or(LogP::PAPER);
    let p: u32 = cli.parsed("--p", 64);
    let iters: u32 = cli.parsed("--iters", 50);
    let linger_ms: u64 = cli.parsed("--linger-ms", 0);
    let seed: u64 = cli.parsed("--seed", 1);
    let spec = build_spec(cli);
    let mask = dead_mask(cli, p, seed, spec.root);
    let pm_path =
        std::path::PathBuf::from(cli.value("--postmortem").unwrap_or("ct-postmortem.json"));
    let base = ClusterConfig::new();
    let hub = Arc::new(TelemetryHub::new(base.threads, p as usize));
    let cfg = base
        .telemetry(Arc::clone(&hub))
        .sample(std::time::Duration::from_millis(default_sample_ms()))
        .flight(default_flight_cap())
        .postmortem(pm_path.clone());
    let mut cluster = Cluster::with_config(p, logp, cfg);
    let store = cluster.series();
    let _server = spawn_monitor_server(
        cli.value("--listen").unwrap_or("127.0.0.1:9184"),
        Arc::clone(&hub),
        store.clone(),
    );
    let mut incomplete = 0u32;
    let mut health_mark = 0usize;
    for i in 0..iters {
        let report = cluster
            .run_broadcast(&spec, &mask, seed + u64::from(i))
            .unwrap_or_else(|e| {
                eprintln!("cluster run failed: {e}");
                std::process::exit(2);
            });
        if let Some(s) = &store {
            let fired = s.events_from(health_mark);
            health_mark += fired.len();
            for e in &fired {
                eprintln!(
                    "[health {} {} t={}ms] {}",
                    e.severity.name(),
                    e.rule,
                    e.t_ms,
                    e.message
                );
            }
        }
        if !report.completed {
            incomplete += 1;
            if let Some(stall) = &report.stall {
                eprint!("{}", stall.render_text());
            }
            if report.postmortem.is_some() {
                eprintln!("[postmortem {}]", pm_path.display());
            }
        }
    }
    if linger_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(linger_ms));
    }
    if let Some(path) = cli.value("--series") {
        write_series(path, store.as_deref());
    }
    println!("campaign done: {iters} broadcasts, {incomplete} incomplete");
    if incomplete > 0 {
        std::process::exit(1);
    }
}

/// Glyph ramp for the monitor sparkline (space = idle).
const SPARK: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Sparkline over the trailing delivery rates, scaled to their max.
fn sparkline(rates: &[f64]) -> String {
    let max = rates.iter().fold(0.0f64, |a, &b| a.max(b));
    rates
        .iter()
        .map(|&r| {
            if max <= 0.0 {
                SPARK[0]
            } else {
                let idx = ((r / max) * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[idx.min(SPARK.len() - 1)]
            }
        })
        .collect()
}

/// One `ct monitor` line per sample window: delivery/coloring rates,
/// queue gauges and a sparkline of the trailing delivery rates.
fn monitor_line(sample: &SeriesSample, trail: &[f64]) -> String {
    format!(
        "[{:>8} ms] delivered {:>8.1}/s colored {:>7.1}/s | runq {} timers {} spills {} | {}",
        sample.t_ms,
        sample.rate("msgs.delivered"),
        sample.rate("coord.colored"),
        sample.gauge("runq.depth"),
        sample.gauge("timers.pending"),
        sample.delta("mailbox.spills"),
        sparkline(trail),
    )
}

/// How many trailing windows the monitor sparkline covers.
const SPARK_WINDOWS: usize = 30;

/// `ct monitor` — follow a live `ct serve` / `ct top --listen`
/// endpoint (`--connect`) or replay a recorded `ct-series-v1` export
/// (`--input`): one line per sample window plus every health event,
/// then the series summary.
fn cmd_monitor(cli: &Cli) {
    let text = match (cli.value("--input"), cli.value("--connect")) {
        (Some(path), None) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }),
        (None, Some(addr)) => follow(cli, addr),
        _ => {
            eprintln!("ct monitor needs exactly one of --input <series.jsonl> / --connect <ADDR>");
            std::process::exit(2);
        }
    };
    let summary = SeriesSummary::from_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("series export: {e}");
        std::process::exit(2);
    });
    // Replay: interleave sample lines and health events in time order,
    // exactly as a live follow would have printed them.
    if cli.value("--input").is_some() {
        let mut trail: Vec<f64> = Vec::new();
        let mut health = summary.health.iter().peekable();
        for s in &summary.samples {
            while health.peek().is_some_and(|e| e.t_ms < s.t_ms) {
                let e = health.next().unwrap();
                println!(
                    "[{:>8} ms] {} {}: {}",
                    e.t_ms,
                    e.severity.name().to_uppercase(),
                    e.rule,
                    e.message
                );
            }
            trail.push(s.rate("msgs.delivered"));
            let from = trail.len().saturating_sub(SPARK_WINDOWS);
            println!("{}", monitor_line(s, &trail[from..]));
        }
        for e in health {
            println!(
                "[{:>8} ms] {} {}: {}",
                e.t_ms,
                e.severity.name().to_uppercase(),
                e.rule,
                e.message
            );
        }
    }
    print!("{}", summary.render_text());
}

/// The `--connect` loop: poll `/series.jsonl` until the endpoint goes
/// away, printing windows and health events as they appear; returns
/// the last export for the final summary. Exits 2 when the very first
/// request already fails (nothing is listening).
fn follow(cli: &Cli, addr: &str) -> String {
    let interval_ms: u64 = cli.parsed("--interval-ms", 1000);
    let timeout = std::time::Duration::from_secs(2);
    let mut last = match http_get(addr, "/series.jsonl", timeout) {
        Ok((200, body)) => body,
        Ok((status, _)) => {
            eprintln!("{addr}/series.jsonl: HTTP {status} (is sampling enabled?)");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("{addr}: {e}");
            std::process::exit(2);
        }
    };
    let mut printed_seq: Option<u64> = None;
    let mut printed_health = 0usize;
    let mut trail: Vec<f64> = Vec::new();
    loop {
        match SeriesSummary::from_jsonl(&last) {
            Ok(summary) => {
                for s in &summary.samples {
                    if printed_seq.is_some_and(|last| s.seq <= last) {
                        continue;
                    }
                    printed_seq = Some(s.seq);
                    trail.push(s.rate("msgs.delivered"));
                    let from = trail.len().saturating_sub(SPARK_WINDOWS);
                    println!("{}", monitor_line(s, &trail[from..]));
                }
                for e in summary.health.iter().skip(printed_health) {
                    println!(
                        "[{:>8} ms] {} {}: {}",
                        e.t_ms,
                        e.severity.name().to_uppercase(),
                        e.rule,
                        e.message
                    );
                }
                printed_health = summary.health.len();
            }
            Err(e) => eprintln!("series export: {e}"),
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
        match http_get(addr, "/series.jsonl", timeout) {
            Ok((200, body)) => last = body,
            // The serve campaign finished and the endpoint went away:
            // that's the normal end of a follow.
            Ok(_) | Err(_) => break,
        }
    }
    last
}

fn cmd_perf(cli: &Cli) {
    match cli.args.first().map(String::as_str) {
        Some("diff") => {
            let (old_path, new_path) = match (cli.args.get(1), cli.args.get(2)) {
                (Some(o), Some(n)) => (o, n),
                _ => usage(),
            };
            let threshold: f64 = cli.parsed("--threshold", 0.05);
            let load = |path: &str| {
                BenchSnapshot::read(std::path::Path::new(path)).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            };
            let old = load(old_path);
            let new = load(new_path);
            let diff = PerfDiff::diff(&old, &new, threshold);
            print!("{}", diff.render_text());
            if !diff.regressions().is_empty() {
                std::process::exit(1);
            }
        }
        Some("bench") if cli.flag("--runtime") => cmd_perf_bench_runtime(cli),
        Some("bench") if cli.flag("--pubsub") => cmd_perf_bench_pubsub(cli),
        Some("bench") => {
            let quick = cli.flag("--quick");
            let p: u32 = cli.parsed("--p", if quick { 1024 } else { 4096 });
            let reps: u32 = cli.parsed("--reps", if quick { 10 } else { 40 });
            let seed0: u64 = cli.parsed("--seed", 1);
            let rate: f64 = cli.parsed("--rate", 0.01);
            let logp: LogP = cli
                .value("--logp")
                .map(|s| s.parse().expect("valid LogP string"))
                .unwrap_or(LogP::PAPER);
            let tree = parse_tree(cli.value("--tree").unwrap_or("binomial"));
            let campaign = Campaign::new(Variant::tree_checked_sync(tree), p, logp)
                .with_faults(FaultSpec::Rate(rate))
                .with_reps(reps)
                .with_seed(seed0);
            let run = |c: &Campaign| {
                c.run().unwrap_or_else(|e| {
                    eprintln!("campaign failed: {e:?}");
                    std::process::exit(2);
                })
            };
            // Warm-up pass: primes the topology cache and the allocator
            // the way any long campaign would, so the timed pass
            // measures the steady state the campaigns actually run in.
            // Telemetry is attached to the timed pass only, so the
            // snapshot counts exactly the measured repetitions.
            run(&campaign);
            let hub = Arc::new(TelemetryHub::new(1, p as usize));
            let timed = campaign.clone().with_telemetry(Arc::clone(&hub));
            // The timed pass hand-rolls `Campaign::run` (same one-arena
            // sequential loop) to watch the arena footprint: the number
            // of repetitions that still grow it is the allocator-churn
            // gauge — a steady-state layout stops growing after rep 1,
            // anything later means per-rep allocation leaked back in.
            let mut arena = RunArena::new();
            let mut records = Vec::with_capacity(reps as usize);
            let mut footprint = 0usize;
            let mut growth_reps = 0u32;
            let start = std::time::Instant::now();
            for i in 0..reps {
                records.push(timed.run_one_reusable(i, &mut arena).unwrap_or_else(|e| {
                    eprintln!("campaign failed: {e:?}");
                    std::process::exit(2);
                }));
                let now = arena.footprint_bytes();
                if now > footprint {
                    footprint = now;
                    growth_reps = i + 1;
                }
            }
            let wall = start.elapsed();
            let events: u64 = records.iter().map(|r| r.events).sum();
            let messages: u64 = records.iter().map(|r| r.messages).sum();
            let wall_ns = wall.as_nanos() as f64;
            let secs = wall.as_secs_f64();
            let reps_per_sec = f64::from(reps) / secs;
            let events_per_sec = events as f64 / secs;
            let snapshot = BenchSnapshot::new("sim_throughput")
                .with_host_provenance()
                .with_provenance("variant", &campaign.variant.label())
                .with_provenance("p", &p.to_string())
                .with_provenance("logp", &logp.to_string())
                .with_provenance("faults", &format!("{:?}", campaign.faults))
                .with_provenance("reps", &reps.to_string())
                .with_provenance("seed0", &seed0.to_string())
                .with_provenance("total_events", &events.to_string())
                .with_provenance("total_messages", &messages.to_string())
                .with_provenance("reps_per_sec", &format!("{reps_per_sec:.2}"))
                .with_provenance("events_per_sec", &format!("{events_per_sec:.0}"))
                .with_provenance("arena_footprint_bytes", &footprint.to_string())
                .with_metric("ns_per_rep", wall_ns / f64::from(reps.max(1)))
                .with_metric("ns_per_event", wall_ns / events.max(1) as f64)
                .with_metric("arena_steady_state_reps", f64::from(growth_reps));
            let path = std::path::PathBuf::from(
                cli.value("--out")
                    .map(str::to_owned)
                    .unwrap_or_else(|| "results/BENCH_sim_throughput.json".to_owned()),
            );
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(dir);
                }
            }
            match snapshot.write(&path) {
                Ok(()) => println!(
                    "[bench sim_throughput] reps/sec={reps_per_sec:.2} \
                     events/sec={events_per_sec:.0} wall={wall:.2?} -> {}",
                    path.display()
                ),
                Err(e) => {
                    eprintln!("could not write {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
            let manifest = RunManifest::new("sim_throughput")
                .protocol(campaign.variant.label())
                .p(p)
                .logp(logp)
                .seed(seed0)
                .reps(reps)
                .wall_secs(secs)
                .with_extra_json("telemetry", hub.snapshot().with_source("sim").to_json())
                .stamped();
            match manifest.write_next_to(&path) {
                Ok(mpath) => println!("[telemetry manifest {}]", mpath.display()),
                Err(e) => eprintln!("could not write manifest for {}: {e}", path.display()),
            }
        }
        Some("snapshot") => {
            let name = cli.value("--name").unwrap_or_else(|| usage());
            let p: u32 = cli.parsed("--p", 64);
            let logp: LogP = cli
                .value("--logp")
                .map(|s| s.parse().expect("valid LogP string"))
                .unwrap_or(LogP::PAPER);
            let reps: u32 = cli.parsed("--reps", 5);
            let seed0: u64 = cli.parsed("--seed", 1);
            let fault_spec = if let Some(n) = cli.value("--faults") {
                FaultSpec::Count(n.parse().unwrap_or_else(|_| usage()))
            } else if let Some(r) = cli.value("--rate") {
                FaultSpec::Rate(r.parse().unwrap_or_else(|_| usage()))
            } else {
                FaultSpec::None
            };
            let campaign = Campaign::new(Variant::Tree(build_spec(cli)), p, logp)
                .with_faults(fault_spec)
                .with_reps(reps)
                .with_seed(seed0);
            let ca = analyze_campaign(&campaign).unwrap_or_else(|e| {
                eprintln!("campaign failed: {e:?}");
                std::process::exit(2);
            });
            let path = std::path::PathBuf::from(
                cli.value("--out")
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("BENCH_{name}.json")),
            );
            match ca.bench_snapshot(name, &campaign).write(&path) {
                Ok(()) => println!("[bench snapshot {}]", path.display()),
                Err(e) => {
                    eprintln!("could not write {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        _ => usage(),
    }
}

/// `ct scale` — the scaling study of ROADMAP item 3: sweep `P` up to
/// `2²⁰` (fault-free and chunked-fault cells per correction variant),
/// assert the synchronized-checked cells against the Lemma 2/3 and
/// Corollary 1 closed forms, and write the tracked
/// `results/BENCH_sim_scale.json` snapshot (ns/event per `P`, peak RSS).
/// Exits 1 when any repetition escapes its bounds.
fn cmd_scale(cli: &Cli) {
    let mut cfg = if cli.flag("--quick") {
        ScaleConfig::quick()
    } else {
        ScaleConfig::full()
    };
    cfg.min_exp = cli.parsed("--min-exp", cfg.min_exp);
    cfg.max_exp = cli.parsed("--max-exp", cfg.max_exp);
    cfg.step_exp = cli.parsed("--step-exp", cfg.step_exp);
    cfg.reps = cli.parsed("--reps", cfg.reps);
    cfg.rate = cli.parsed("--rate", cfg.rate);
    cfg.seed0 = cli.parsed("--seed", cfg.seed0);
    cfg.threads = cli.parsed("--threads", cfg.threads);
    cfg.tree = parse_tree(cli.value("--tree").unwrap_or("binomial"));
    if let Some(s) = cli.value("--logp") {
        cfg.logp = s.parse().expect("valid LogP string");
    }
    if cfg.min_exp > cfg.max_exp || cfg.max_exp >= 31 {
        eprintln!(
            "bad sweep range 2^{}..2^{} (need min <= max < 31)",
            cfg.min_exp, cfg.max_exp
        );
        std::process::exit(2);
    }
    println!(
        "[scale] P = 2^{}..2^{} step 2^{}, {} reps/cell, rate {}, {} threads",
        cfg.min_exp, cfg.max_exp, cfg.step_exp, cfg.reps, cfg.rate, cfg.threads
    );
    let t0 = std::time::Instant::now();
    let report = run_scale(&cfg).unwrap_or_else(|e| {
        eprintln!("scale sweep failed: {e}");
        std::process::exit(2);
    });
    let wall = t0.elapsed();
    for c in &report.cells {
        println!(
            "[scale] p={:<8} {:<42} faults={:<6} quiescence {:>7.1} \
             msgs/proc {:>6.3} g_max {:>3} ns/event {:>7.2}",
            c.p,
            c.variant,
            c.faults,
            c.quiescence_mean(),
            c.messages_per_process_mean(),
            c.g_max(),
            c.ns_per_event()
        );
    }
    let max_p = report.cells.iter().map(|c| c.p).max().unwrap_or(0);
    let snapshot = report.bench_snapshot(&cfg);
    println!(
        "[scale] ns/event at P={max_p}: {:.2}, peak RSS {} kB, wall {wall:.2?}",
        report.ns_per_event_at(max_p),
        snapshot.metrics.get("peak_rss_kb").copied().unwrap_or(0.0)
    );
    let path = std::path::PathBuf::from(
        cli.value("--out")
            .map(str::to_owned)
            .unwrap_or_else(|| "results/BENCH_sim_scale.json".to_owned()),
    );
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match snapshot.write(&path) {
        Ok(()) => println!("[scale] -> {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    let manifest = RunManifest::new("sim_scale")
        .protocol("scc + opp4 (binomial unless --tree)")
        .p(max_p)
        .logp(cfg.logp)
        .seed(cfg.seed0)
        .reps(cfg.reps)
        .wall_secs(wall.as_secs_f64())
        .with_extra("threads", cfg.threads.to_string())
        .with_extra("violations", report.violations.len().to_string())
        .stamped();
    match manifest.write_next_to(&path) {
        Ok(mpath) => println!("[scale manifest {}]", mpath.display()),
        Err(e) => eprintln!("could not write manifest for {}: {e}", path.display()),
    }
    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!("[scale] VIOLATION: {v}");
        }
        eprintln!(
            "[scale] {} repetition(s) escaped the closed-form bounds",
            report.violations.len()
        );
        std::process::exit(1);
    }
    println!("[scale] all checked-sync cells respect Lemma 2, Corollary 1 and Lemma 3");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    let cli = Cli { args };
    match cmd.as_str() {
        "run" => cmd_run(&cli),
        "tree" => cmd_tree(&cli),
        "sweep" => cmd_sweep(&cli),
        "trace" => cmd_trace(&cli),
        "analyze" => cmd_analyze(&cli),
        "check" => cmd_check(&cli),
        "forensics" => cmd_forensics(&cli),
        "perf" => cmd_perf(&cli),
        "scale" => cmd_scale(&cli),
        "pubsub" => cmd_pubsub(&cli),
        "stats" => cmd_stats(&cli),
        "top" => cmd_top(&cli),
        "serve" => cmd_serve(&cli),
        "monitor" => cmd_monitor(&cli),
        "postmortem" => cmd_postmortem(&cli),
        _ => usage(),
    }
}
