//! Flight-recorder and postmortem contract tests across both drivers.
//!
//! Four guarantees: the per-shard ring retains exactly the most recent
//! `cap` records with loss-detecting sequence numbers; attaching a
//! [`FlightRecorder`] never perturbs what a run computes (traces and
//! outcomes are byte-identical on vs off, mirroring the telemetry
//! suite); a forced stall at P=8 with rank 1 dead produces a
//! `ct-postmortem-v1` dump whose per-rank tails name the stranded
//! subtree {3, 5, 7} and the absence of any mailbox push to it; and a
//! hand-fed deterministic dump renders byte-for-byte stable JSON and
//! reconstruction text (regenerate with `CT_REGEN_GOLDEN=1`).

use std::sync::Arc;

use corrected_trees::analyze::PostmortemReport;
use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::TreeKind;
use corrected_trees::logp::LogP;
use corrected_trees::obs::flight::{FlightKind, FlightRecorder, NO_RANK};
use corrected_trees::obs::telemetry::{Counter, Dist, TelemetryHub};
use corrected_trees::obs::VecSink;
use corrected_trees::runtime::{Cluster, ClusterConfig, Postmortem, RankStall, StallReport};
use corrected_trees::sim::{FaultPlan, Simulation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A shard ring overwrites oldest-first: after `total` writes it
    /// holds exactly the newest `min(cap, total)` records, and the
    /// surviving sequence numbers are contiguous up to the last write,
    /// so a reader can tell precisely how many records were lost.
    #[test]
    fn ring_retains_exactly_the_most_recent_cap_records(cap in 1usize..32, total in 0u64..200) {
        let rec = FlightRecorder::new(1, cap);
        for i in 0..total {
            rec.record(0, FlightKind::Wake, (i % 7) as u32, i, i, i);
        }
        let dump = rec.dump();
        let shard = &dump.shards[0];
        prop_assert_eq!(shard.written, total);
        prop_assert_eq!(shard.lost, total.saturating_sub(cap as u64));
        prop_assert_eq!(shard.records.len() as u64, total.min(cap as u64));
        for (i, r) in shard.records.iter().enumerate() {
            prop_assert_eq!(r.seq, shard.lost + i as u64);
            // The payload rode along with its sequence number: what
            // survived is the newest data, not a torn mix.
            prop_assert_eq!(r.aux, r.seq);
        }
        prop_assert_eq!(dump.total_written(), total);
        prop_assert_eq!(dump.total_lost(), total.saturating_sub(cap as u64));
    }
}

/// Run the reference corrected-tree sim twice — with and without a
/// flight recorder — and require identical event streams and outcomes.
/// The recorder must be a pure observer of the simulation.
#[test]
fn sim_trace_is_byte_identical_with_flight_recorder_attached() {
    let p = 64u32;
    let seed = 42u64;
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        corrected_trees::core::correction::CorrectionKind::OpportunisticOptimized { distance: 4 },
    );
    let plan = FaultPlan::random_count_protecting(p, 3, seed, 0).unwrap();

    let mut plain_sink = VecSink::new();
    let plain_out = Simulation::builder(p, LogP::PAPER)
        .faults(plan.clone())
        .seed(seed)
        .build()
        .run_with_sink(&spec, &mut plain_sink)
        .unwrap();

    let recorder = Arc::new(FlightRecorder::new(1, 4096));
    let mut obs_sink = VecSink::new();
    let obs_out = Simulation::builder(p, LogP::PAPER)
        .faults(plan)
        .seed(seed)
        .flight(Arc::clone(&recorder))
        .build()
        .run_with_sink(&spec, &mut obs_sink)
        .unwrap();

    assert_eq!(plain_sink.events, obs_sink.events);
    assert_eq!(plain_out.events, obs_out.events);
    assert_eq!(plain_out.messages.total(), obs_out.messages.total());
    assert_eq!(plain_out.colored_at, obs_out.colored_at);
    assert_eq!(plain_out.quiescence, obs_out.quiescence);

    // And the recorder did observe the run it was attached to.
    let dump = recorder.dump();
    assert!(dump.total_written() > 0);
    let kinds: Vec<FlightKind> = dump.merged().iter().map(|(_, r)| r.kind).collect();
    assert_eq!(kinds.first(), Some(&FlightKind::IterStart));
    assert_eq!(kinds.last(), Some(&FlightKind::IterEnd));
    assert!(kinds.contains(&FlightKind::MailboxPush));
}

/// A cluster run with a flight recorder attached must report the same
/// protocol results as one without: the black box only reads, never
/// steers.
#[test]
fn cluster_results_are_identical_with_flight_recorder_attached() {
    let p = 8u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let dead = vec![false; p as usize];

    let mut plain = Cluster::new(p, LogP::PAPER);
    let plain_report = plain.run_broadcast(&spec, &dead, 7).unwrap();

    let cfg = ClusterConfig::new().threads(2).flight(4096);
    let mut observed = Cluster::with_config(p, LogP::PAPER, cfg);
    let obs_report = observed.run_broadcast(&spec, &dead, 7).unwrap();

    assert!(plain_report.completed && obs_report.completed);
    assert_eq!(plain_report.messages, 7);
    assert_eq!(obs_report.messages, 7);
    assert_eq!(plain_report.uncolored, obs_report.uncolored);
    // A clean run captures no postmortem.
    assert!(obs_report.postmortem.is_none());
}

/// The acceptance scenario: killing rank 1 under a plain binomial tree
/// at P=8 strands its subtree {3, 5, 7}. The watchdog must freeze the
/// rings and attach a `ct-postmortem-v1` dump whose per-rank tails show
/// each stranded rank's last poll and — the diagnosis — that no mailbox
/// push ever reached it, while alive ranks' tails name their pushers.
#[test]
fn forced_stall_dump_names_the_stranded_subtree() {
    let p = 8u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let mut dead = vec![false; p as usize];
    dead[1] = true;

    let cfg = ClusterConfig::new()
        .threads(2)
        .timeout(std::time::Duration::from_millis(200))
        .flight(4096);
    let mut cluster = Cluster::with_config(p, LogP::PAPER, cfg);
    let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();

    assert!(!report.completed);
    let pm = report
        .postmortem
        .expect("stalled run captures a postmortem");
    assert_eq!(pm.reason, "watchdog_stall");
    assert_eq!(pm.focus_ranks(), vec![3, 5, 7]);
    let json = pm.to_json();
    assert!(
        json.starts_with("{\"schema\":\"ct-postmortem-v1\""),
        "{json}"
    );

    for rank in [3u32, 5, 7] {
        let tail = pm.flight.rank_tail(rank, 16);
        assert!(
            tail.iter()
                .any(|(_, r)| r.kind == FlightKind::QuantumStart && r.rank == rank),
            "stranded rank {rank} polled at least once before stranding"
        );
        assert!(
            !tail.iter().any(|(_, r)| r.kind == FlightKind::MailboxPush),
            "no mailbox push ever reached stranded rank {rank}"
        );
    }
    // Rank 2 is alive and was pushed to directly by the root: the
    // record's aux packs `broadcast_id << 32 | pushing_rank`, so the
    // black box attributes the push to both its sender and its topic
    // (this cluster's first broadcast has id 1).
    let alive_tail = pm.flight.rank_tail(2, 16);
    assert!(
        alive_tail
            .iter()
            .any(|(_, r)| r.kind == FlightKind::MailboxPush
                && r.rank == 2
                && r.push_peer() == 0
                && r.push_bcast() == 1),
        "alive rank 2 received the root's push"
    );

    // The consumer-side reconstruction renders the same diagnosis.
    let rendered = PostmortemReport::from_json(&json)
        .expect("runtime dump parses")
        .render_text();
    for rank in [3, 5, 7] {
        assert!(
            rendered.contains(&format!("rank     {rank}:")),
            "{rendered}"
        );
    }
    assert!(
        rendered.contains("no message ever reached this rank"),
        "{rendered}"
    );
}

const GOLDEN_DUMP_PATH: &str = "tests/data/golden_postmortem.json";
const GOLDEN_DUMP: &str = include_str!("data/golden_postmortem.json");
const GOLDEN_REPORT_PATH: &str = "tests/data/golden_postmortem_report.txt";
const GOLDEN_REPORT: &str = include_str!("data/golden_postmortem_report.txt");

/// A fixed two-shard recorder plus hand-built stall report and
/// telemetry: one stranded rank (3) that polled once and never heard
/// from anyone, one healthy rank (2) with a push, a drain, and a
/// pending timer.
fn golden_postmortem_json() -> String {
    let rec = FlightRecorder::new(2, 8);
    rec.record(0, FlightKind::IterStart, NO_RANK, 1, 0, 100);
    rec.record(0, FlightKind::QuantumStart, 3, 1, 8, 350);
    rec.record(0, FlightKind::QuantumEnd, 3, 1, 8, 351);
    // MailboxPush aux packs `broadcast_id << 32 | pushing_rank`:
    // rank 0 pushing on behalf of broadcast 1.
    rec.record(1, FlightKind::MailboxPush, 2, 1 << 32, 2, 340);
    rec.record(1, FlightKind::QuantumStart, 2, 1, 4, 345);
    rec.record(1, FlightKind::MailboxDrain, 2, 1, 0, 345);
    rec.record(1, FlightKind::TimerArm, 2, 400, 6, 346);
    rec.record(1, FlightKind::QuantumEnd, 2, 1, 6, 347);
    rec.record(1, FlightKind::CoordBatch, NO_RANK, 2, 1, 348);
    rec.freeze();

    let hub = TelemetryHub::new(2, 8);
    for w in 0..2usize {
        let n = (w as u64) + 1;
        hub.add(w, Counter::SchedQuanta, 4 * n);
        hub.add(w, Counter::MsgsDelivered, 2 * n);
        hub.add(w, Counter::MailboxPushes, 2 * n);
        hub.add(w, Counter::TimerArms, n - 1);
        hub.add(w, Counter::CoordBatches, n - 1);
        hub.add(w, Counter::CoordColored, 2 * n);
        hub.observe(w, Dist::QuantumUs, 10 * n);
    }
    hub.set_runq_depth(0);
    hub.set_timers_pending(1);

    let stall = StallReport {
        id: 1,
        timeout_ms: 200,
        p: 8,
        live: 7,
        colored: 4,
        runq_depth: 0,
        pending_timers: 1,
        coord_in_flight: 0,
        now_us: 200_400,
        epoch_us: 100,
        ranks: vec![RankStall {
            rank: 3,
            scheduled: false,
            mailbox_len: 0,
            mailbox_spilled: 0,
            last_poll_us: Some(350),
        }],
    };

    let pm = Postmortem {
        reason: "watchdog_stall".to_owned(),
        p: 8,
        stall: Some(stall),
        telemetry: Some(hub.snapshot().with_source("cluster")),
        health: Vec::new(),
        flight: rec.dump(),
    };
    pm.to_json() + "\n"
}

fn regen() -> bool {
    std::env::var_os("CT_REGEN_GOLDEN").is_some()
}

#[test]
fn golden_dump_is_byte_for_byte_stable() {
    let json = golden_postmortem_json();
    if regen() {
        std::fs::write(GOLDEN_DUMP_PATH, &json).expect("write golden dump");
        return;
    }
    assert_eq!(
        json, GOLDEN_DUMP,
        "postmortem dump diverged from the golden file; if intentional, \
         regenerate with CT_REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_report_text_is_byte_for_byte_stable() {
    // Under regen the checked-in dump may be stale (or empty on first
    // generation) — render from the freshly built dump.
    let json = if regen() {
        golden_postmortem_json()
    } else {
        GOLDEN_DUMP.to_owned()
    };
    let text = PostmortemReport::from_json(json.trim_end())
        .expect("golden dump parses")
        .render_text();
    if regen() {
        std::fs::write(GOLDEN_REPORT_PATH, &text).expect("write golden report text");
        return;
    }
    assert_eq!(
        text, GOLDEN_REPORT,
        "postmortem report diverged from the golden file; if intentional, \
         regenerate with CT_REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_report_is_internally_consistent() {
    let report = PostmortemReport::from_json(GOLDEN_DUMP.trim_end()).unwrap();
    assert_eq!(report.reason, "watchdog_stall");
    assert_eq!(report.p, 8);
    assert_eq!(report.flight_shards, 2);
    assert_eq!(report.retained, 9);
    assert_eq!(report.lost, 0);
    let stall = report.stall.as_ref().expect("golden dump carries a stall");
    assert_eq!(stall.ranks.len(), 1);
    assert_eq!(stall.ranks[0].rank, 3);
    let text = report.render_text();
    assert!(text.contains("postmortem: watchdog_stall (p=8)"), "{text}");
    assert!(text.contains("last mailbox push: none recorded"), "{text}");
    assert!(text.contains("pending timers:"), "{text}");
}
