//! The two drivers — LogP simulator and thread cluster — run the same
//! protocol state machines. These tests pin down that shared-semantics
//! contract: identical coloring outcomes and tree message counts, and
//! correction healing the same fault patterns on both.

use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::TreeKind;
use corrected_trees::logp::LogP;
use corrected_trees::runtime::Cluster;
use corrected_trees::sim::{FaultPlan, Simulation};

#[test]
fn plain_tree_message_counts_agree() {
    let p = 64u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let sim_out = Simulation::builder(p, LogP::PAPER)
        .build()
        .run(&spec)
        .unwrap();
    let mut cluster = Cluster::new(p, LogP::PAPER);
    let report = cluster
        .run_broadcast(&spec, &vec![false; p as usize], 0)
        .unwrap();
    assert!(report.completed);
    // Dissemination is deterministic and runs to completion on both
    // drivers: exactly P - 1 messages.
    assert_eq!(sim_out.messages.total(), 63);
    assert_eq!(report.messages, 63);
}

#[test]
fn both_drivers_heal_the_same_fault_pattern() {
    let p = 128u32;
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::LAME2,
        CorrectionKind::OpportunisticOptimized { distance: 4 },
    );
    let dead_ranks = [3u32, 64, 65, 100];
    let plan = FaultPlan::from_ranks(p, &dead_ranks).unwrap();
    let sim_out = Simulation::builder(p, LogP::PAPER)
        .faults(plan)
        .build()
        .run(&spec)
        .unwrap();
    assert!(sim_out.all_live_colored(), "{:?}", sim_out.uncolored_live());

    let mut dead = vec![false; p as usize];
    for &r in &dead_ranks {
        dead[r as usize] = true;
    }
    let mut cluster = Cluster::new(p, LogP::PAPER);
    let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();
    assert!(report.completed, "cluster uncolored: {:?}", report.uncolored);
    assert!(report.uncolored.is_empty());
}

#[test]
fn plain_tree_leaves_identical_orphans_on_both_drivers() {
    let p = 32u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let plan = FaultPlan::from_ranks(p, &[2]).unwrap();
    let sim_out = Simulation::builder(p, LogP::PAPER)
        .faults(plan)
        .build()
        .run(&spec)
        .unwrap();

    let mut dead = vec![false; p as usize];
    dead[2] = true;
    let mut cluster = Cluster::new(p, LogP::PAPER);
    cluster.set_timeout(std::time::Duration::from_millis(300));
    let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();
    assert!(!report.completed);
    assert_eq!(sim_out.uncolored_live(), report.uncolored);
}

#[test]
fn gossip_round_limited_completes_on_both_drivers() {
    let p = 64u32;
    let spec = corrected_trees::gossip::GossipSpec::round_limited(
        10,
        CorrectionKind::Opportunistic { distance: 4 },
    );
    let sim_out = Simulation::builder(p, LogP::PAPER)
        .seed(3)
        .build()
        .run(&spec)
        .unwrap();
    assert!(sim_out.all_live_colored(), "{:?}", sim_out.uncolored_live());

    let mut cluster = Cluster::new(p, LogP::PAPER);
    let report = cluster
        .run_broadcast(&spec, &vec![false; p as usize], 3)
        .unwrap();
    assert!(report.completed, "{:?}", report.uncolored);
}
