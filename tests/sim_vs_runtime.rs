//! The two drivers — LogP simulator and thread cluster — run the same
//! protocol state machines. These tests pin down that shared-semantics
//! contract at two levels: aggregate (identical coloring outcomes and
//! tree message counts, correction healing the same fault patterns) and
//! event-level (both drivers emit the same `ct-obs` event schema, and
//! for deterministic protocols the same multiset of protocol events).

use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::{BroadcastSpec, Payload};
use corrected_trees::core::tree::TreeKind;
use corrected_trees::logp::LogP;
use corrected_trees::obs::{Event, EventKind, MonitorConfig, MonitorSink, VecSink};
use corrected_trees::runtime::Cluster;
use corrected_trees::sim::{FaultPlan, Simulation};

#[test]
fn plain_tree_message_counts_agree() {
    let p = 64u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let sim_out = Simulation::builder(p, LogP::PAPER)
        .build()
        .run(&spec)
        .unwrap();
    let mut cluster = Cluster::new(p, LogP::PAPER);
    let report = cluster
        .run_broadcast(&spec, &vec![false; p as usize], 0)
        .unwrap();
    assert!(report.completed);
    // Dissemination is deterministic and runs to completion on both
    // drivers: exactly P - 1 messages.
    assert_eq!(sim_out.messages.total(), 63);
    assert_eq!(report.messages, 63);
}

#[test]
fn both_drivers_heal_the_same_fault_pattern() {
    let p = 128u32;
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::LAME2,
        CorrectionKind::OpportunisticOptimized { distance: 4 },
    );
    let dead_ranks = [3u32, 64, 65, 100];
    let plan = FaultPlan::from_ranks(p, &dead_ranks).unwrap();
    let sim_out = Simulation::builder(p, LogP::PAPER)
        .faults(plan)
        .build()
        .run(&spec)
        .unwrap();
    assert!(sim_out.all_live_colored(), "{:?}", sim_out.uncolored_live());

    let mut dead = vec![false; p as usize];
    for &r in &dead_ranks {
        dead[r as usize] = true;
    }
    let mut cluster = Cluster::new(p, LogP::PAPER);
    let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();
    assert!(
        report.completed,
        "cluster uncolored: {:?}",
        report.uncolored
    );
    assert!(report.uncolored.is_empty());
}

#[test]
fn plain_tree_leaves_identical_orphans_on_both_drivers() {
    let p = 32u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let plan = FaultPlan::from_ranks(p, &[2]).unwrap();
    let sim_out = Simulation::builder(p, LogP::PAPER)
        .faults(plan)
        .build()
        .run(&spec)
        .unwrap();

    let mut dead = vec![false; p as usize];
    dead[2] = true;
    let mut cluster = Cluster::new(p, LogP::PAPER);
    cluster.set_timeout(std::time::Duration::from_millis(300));
    let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();
    assert!(!report.completed);
    assert_eq!(sim_out.uncolored_live(), report.uncolored);
}

/// The timing-independent core of an event: kind tag + endpoints +
/// payload. Two correct drivers of a deterministic protocol must agree
/// on the multiset of these.
fn event_key(e: &Event) -> Option<(&'static str, u32, u32, Payload)> {
    match e.kind {
        EventKind::SendStart { from, to, payload } => Some(("send", from, to, payload)),
        EventKind::Arrive { from, to, payload } => Some(("arrive", from, to, payload)),
        EventKind::Deliver { from, to, payload } => Some(("deliver", from, to, payload)),
        _ => None,
    }
}

fn message_multiset(events: &[Event]) -> Vec<(&'static str, u32, u32, Payload)> {
    let mut keys: Vec<_> = events.iter().filter_map(event_key).collect();
    keys.sort_by_key(|&(tag, from, to, p)| (tag, from, to, format!("{p:?}")));
    keys
}

#[test]
fn event_streams_agree_for_deterministic_dissemination() {
    let p = 8u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);

    let mut sim_sink = VecSink::new();
    Simulation::builder(p, LogP::PAPER)
        .build()
        .run_with_sink(&spec, &mut sim_sink)
        .unwrap();

    let mut cluster_sink = VecSink::new();
    let mut cluster = Cluster::new(p, LogP::PAPER);
    let report = cluster
        .run_broadcast_observed(&spec, &vec![false; p as usize], 0, &mut cluster_sink)
        .unwrap();
    assert!(report.completed);

    // Same protocol, same fault-free world: identical multisets of
    // send/arrive/deliver events (timing and interleaving differ).
    assert_eq!(
        message_multiset(&sim_sink.events),
        message_multiset(&cluster_sink.events)
    );

    // Both streams color the same ranks.
    let colored = |events: &[Event]| {
        let mut ranks: Vec<u32> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Colored { rank, .. } => Some(rank),
                _ => None,
            })
            .collect();
        ranks.sort_unstable();
        ranks
    };
    assert_eq!(colored(&sim_sink.events), (0..p).collect::<Vec<_>>());
    assert_eq!(colored(&sim_sink.events), colored(&cluster_sink.events));
}

#[test]
fn event_schemas_are_identical_across_drivers() {
    let p = 4u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);

    let mut sim_sink = VecSink::new();
    Simulation::builder(p, LogP::PAPER)
        .build()
        .run_with_sink(&spec, &mut sim_sink)
        .unwrap();
    let mut cluster_sink = VecSink::new();
    let mut cluster = Cluster::new(p, LogP::PAPER);
    cluster
        .run_broadcast_observed(&spec, &vec![false; p as usize], 0, &mut cluster_sink)
        .unwrap();

    // JSONL field shape: strip the timestamps and the two streams use
    // exactly the same fields and values per event kind. (The cluster
    // stream additionally carries a `"w"` wall-clock field.)
    let shape = |events: &[Event]| {
        let mut lines: Vec<String> = events
            .iter()
            .filter(|e| event_key(e).is_some() || matches!(e.kind, EventKind::Colored { .. }))
            .map(|e| {
                let stripped = Event {
                    time: corrected_trees::logp::Time::ZERO,
                    wall_us: None,
                    bcast: None,
                    kind: e.kind.clone(),
                };
                stripped.to_json()
            })
            .collect();
        lines.sort();
        lines
    };
    assert_eq!(shape(&sim_sink.events), shape(&cluster_sink.events));

    // Wall-clock stamping: never on simulator events, always on cluster
    // protocol events.
    assert!(sim_sink.events.iter().all(|e| e.wall_us.is_none()));
    assert!(cluster_sink.events.iter().all(|e| e.wall_us.is_some()));
}

#[test]
fn cluster_records_drops_at_dead_ranks() {
    let p = 8u32;
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 2 },
    );
    let mut dead = vec![false; p as usize];
    dead[3] = true;
    let mut sink = VecSink::new();
    let mut cluster = Cluster::new(p, LogP::PAPER);
    let report = cluster
        .run_broadcast_observed(&spec, &dead, 0, &mut sink)
        .unwrap();
    assert!(report.completed, "uncolored: {:?}", report.uncolored);
    // Dead rank 3 records drops (its parent still sends to it), and
    // every drop names rank 3 as the receiver.
    let drops: Vec<_> = sink
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::DropDead { to, .. } => Some(to),
            _ => None,
        })
        .collect();
    assert!(!drops.is_empty());
    assert!(drops.iter().all(|&to| to == 3));
}

#[test]
fn invariant_monitor_accepts_both_drivers() {
    // The same monitor validates both event streams: the simulator's
    // stream with full LogP timing checks, the cluster's wall-stamped
    // stream with the timing checks automatically relaxed. Zero
    // violations on either is the "identical semantics" contract in
    // executable form.
    let p = 32u32;
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::LAME2,
        CorrectionKind::OpportunisticOptimized { distance: 4 },
    );
    let dead_ranks = [5u32, 17];
    let mut dead = vec![false; p as usize];
    for &r in &dead_ranks {
        dead[r as usize] = true;
    }

    let mut sim_monitor = MonitorSink::new(
        MonitorConfig::new()
            .with_p(p)
            .with_logp(LogP::PAPER)
            .with_failed(dead.clone()),
    );
    let plan = FaultPlan::from_ranks(p, &dead_ranks).unwrap();
    Simulation::builder(p, LogP::PAPER)
        .faults(plan)
        .build()
        .run_with_sink(&spec, &mut sim_monitor)
        .unwrap();
    let sim_report = sim_monitor.finish();
    assert!(sim_report.is_ok(), "sim: {}", sim_report.render_text());
    assert!(sim_report.events > 0);

    let mut cluster_monitor = MonitorSink::new(
        MonitorConfig::new()
            .with_p(p)
            .with_logp(LogP::PAPER)
            .with_failed(dead.clone()),
    );
    let mut cluster = Cluster::new(p, LogP::PAPER);
    let report = cluster
        .run_broadcast_observed(&spec, &dead, 0, &mut cluster_monitor)
        .unwrap();
    assert!(report.completed, "uncolored: {:?}", report.uncolored);
    let cluster_report = cluster_monitor.finish();
    assert!(
        cluster_report.is_ok(),
        "cluster: {}",
        cluster_report.render_text()
    );
    assert!(cluster_report.events > 0);
}

#[test]
fn gossip_round_limited_completes_on_both_drivers() {
    let p = 64u32;
    let spec = corrected_trees::gossip::GossipSpec::round_limited(
        10,
        CorrectionKind::Opportunistic { distance: 4 },
    );
    let sim_out = Simulation::builder(p, LogP::PAPER)
        .seed(3)
        .build()
        .run(&spec)
        .unwrap();
    assert!(sim_out.all_live_colored(), "{:?}", sim_out.uncolored_live());

    let mut cluster = Cluster::new(p, LogP::PAPER);
    let report = cluster
        .run_broadcast(&spec, &vec![false; p as usize], 3)
        .unwrap();
    assert!(report.completed, "{:?}", report.uncolored);
}

/// Previously infeasible on the thread-per-rank cluster (P=512 meant
/// 512 OS threads): the M:N scheduler runs the same cross-driver
/// equality contract at paper-relevant scale.
#[test]
fn sim_and_cluster_agree_at_p512() {
    let p = 512u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let sim_out = Simulation::builder(p, LogP::PAPER)
        .build()
        .run(&spec)
        .unwrap();
    assert!(sim_out.all_live_colored());
    assert_eq!(sim_out.messages.total(), u64::from(p) - 1);

    let mut cluster = Cluster::new(p, LogP::PAPER);
    let report = cluster
        .run_broadcast(&spec, &vec![false; p as usize], 0)
        .unwrap();
    assert!(report.completed, "uncolored: {:?}", report.uncolored);
    assert_eq!(report.messages, u64::from(p) - 1);

    // And with faults + correction: both drivers heal the same plan.
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 4 },
    );
    let plan = FaultPlan::random_count_protecting(p, 5, 9, 0).unwrap();
    let sim_out = Simulation::builder(p, LogP::PAPER)
        .faults(plan.clone())
        .build()
        .run(&spec)
        .unwrap();
    assert!(sim_out.all_live_colored(), "{:?}", sim_out.uncolored_live());
    let report = cluster.run_broadcast(&spec, plan.mask(), 0).unwrap();
    assert!(report.completed, "uncolored: {:?}", report.uncolored);
}

/// Regression stress for the retired ~1-in-10 cluster watchdog flake:
/// under the old thread-per-rank design, P OS threads on an
/// oversubscribed machine could starve an iteration past its 30 s
/// watchdog roughly once per ten CI runs. The M:N pool removes the
/// oversubscription; 200 back-to-back iterations on two workers must
/// complete without a single timeout. `#[ignore]`d locally for being
/// slow-ish; CI's check-smoke job runs it explicitly with
/// `CT_THREADS=2`.
#[test]
#[ignore = "stress test; run explicitly (CI check-smoke does)"]
fn cluster_stress_200_iterations_two_workers() {
    use corrected_trees::runtime::ClusterConfig;
    let p = 64u32;
    let cfg = ClusterConfig::new().threads(2);
    let mut cluster = Cluster::with_config(p, LogP::PAPER, cfg);
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 4 },
    );
    let mut dead = vec![false; p as usize];
    dead[7] = true;
    dead[40] = true;
    for i in 0..200u64 {
        let report = cluster.run_broadcast(&spec, &dead, i).unwrap();
        assert!(
            report.completed,
            "iteration {i} timed out, uncolored: {:?}",
            report.uncolored
        );
    }
}

/// The arena-reuse fast path is an optimization of the fresh-build
/// path, not a semantic change: for every variant and fault regime, a
/// single dirty arena threaded through back-to-back runs must replay
/// the exact event stream and outcome a fresh simulation produces.
#[test]
fn reused_arena_matches_fresh_build_across_variants_and_faults() {
    use corrected_trees::sim::RunArena;
    let p = 96u32;
    let specs: Vec<BroadcastSpec> = vec![
        BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked),
        BroadcastSpec::corrected_tree(
            TreeKind::LAME2,
            CorrectionKind::OpportunisticOptimized { distance: 4 },
        ),
        BroadcastSpec::corrected_tree(
            TreeKind::FOUR_ARY,
            CorrectionKind::Opportunistic { distance: 2 },
        ),
        BroadcastSpec::ack_tree(TreeKind::BINOMIAL),
    ];
    let plans = [
        FaultPlan::none(p),
        FaultPlan::random_count(p, 5, 11).unwrap(),
        FaultPlan::random_rate(p, 0.05, 7).unwrap(),
        FaultPlan::from_ranks(p, &[1, 2, 3, 50]).unwrap(),
    ];
    let mut arena = RunArena::new();
    for spec in &specs {
        for plan in &plans {
            let sim = || {
                Simulation::builder(p, LogP::PAPER)
                    .faults(plan.clone())
                    .seed(5)
                    .build()
            };
            let mut fresh_sink = VecSink::new();
            let fresh_out = sim().run_with_sink(spec, &mut fresh_sink).unwrap();
            let mut reused_sink = VecSink::new();
            let reused_out = sim()
                .run_with_sink_reusable(spec, &mut reused_sink, &mut arena)
                .unwrap();
            assert_eq!(
                fresh_sink.to_jsonl(),
                reused_sink.to_jsonl(),
                "event streams diverged for {spec:?}"
            );
            assert_eq!(fresh_out.quiescence, reused_out.quiescence);
            assert_eq!(fresh_out.events, reused_out.events);
            assert_eq!(fresh_out.messages.total(), reused_out.messages.total());
            assert_eq!(fresh_out.colored_at, reused_out.colored_at);
        }
    }
}

/// A multi-repetition campaign reuses one arena and the topology cache;
/// running each repetition as its own single-rep campaign rebuilds
/// everything from scratch. The records must be identical.
#[test]
fn campaign_records_identical_between_reused_and_fresh_paths() {
    use corrected_trees::exp::{Campaign, FaultSpec, Variant};
    let p = 128u32;
    let cases = [
        (
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            FaultSpec::Rate(0.03),
        ),
        (
            Variant::tree_opportunistic(TreeKind::LAME2, 4),
            FaultSpec::Count(3),
        ),
        (Variant::ack_tree(TreeKind::BINOMIAL), FaultSpec::None),
    ];
    for (variant, faults) in cases {
        let reps = 4u32;
        let seed0 = 21u64;
        let campaign = Campaign::new(variant, p, LogP::PAPER)
            .with_faults(faults.clone())
            .with_reps(reps)
            .with_seed(seed0);
        let reused = campaign.run().unwrap();
        let fresh: Vec<_> = (0..reps)
            .flat_map(|i| {
                Campaign::new(variant, p, LogP::PAPER)
                    .with_faults(faults.clone())
                    .with_reps(1)
                    .with_seed(seed0 + u64::from(i))
                    .run()
                    .unwrap()
            })
            .collect();
        assert_eq!(reused, fresh, "records diverged for {variant:?}");
    }
}
