//! §2.1 reliability bookkeeping and simulator conservation laws,
//! verified on full event traces across protocols.
//!
//! *Integrity*: every coloring results from a message previously sent
//! by a colored process. *No duplicates*: a process's coloring time
//! never regresses. Simulator laws: every delivery matches a send with
//! exact LogP timing; messages to dead processes are dropped; time is
//! monotone.

use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::TreeKind;
use corrected_trees::gossip::GossipSpec;
use corrected_trees::logp::LogP;
use corrected_trees::sim::{FaultPlan, Simulation, Trace, TraceKind};
use proptest::prelude::*;

fn check_trace_laws(
    trace: &Trace,
    out: &corrected_trees::sim::Outcome,
    logp: &LogP,
) -> Result<(), String> {
    let mut sends = Vec::new();
    for e in &trace.events {
        match e.kind {
            TraceKind::SendStart => sends.push(*e),
            TraceKind::Arrive | TraceKind::DropDead => {
                // Arrival exactly o + L after some matching unconsumed send.
                let expect = e.time - (logp.o() + logp.l());
                let pos = sends
                    .iter()
                    .position(|s| {
                        s.from == e.from
                            && s.to == e.to
                            && s.payload == e.payload
                            && s.time == expect
                    })
                    .ok_or_else(|| format!("arrival without matching send: {e}"))?;
                sends.swap_remove(pos);
                if e.kind == TraceKind::DropDead && !out.failed[e.to as usize] {
                    return Err(format!("live process dropped a message: {e}"));
                }
            }
            TraceKind::Deliver => {
                if out.failed[e.to as usize] {
                    return Err(format!("delivery to a dead process: {e}"));
                }
            }
        }
    }
    if !sends.is_empty() {
        return Err(format!("{} sends never arrived", sends.len()));
    }

    // Integrity: a coloring message to r precedes (or equals) r's
    // coloring time; senders of coloring payloads are colored at send
    // time; dead processes are never colored.
    for r in 0..out.p {
        let colored_at = out.colored_at[r as usize];
        if out.failed[r as usize] && colored_at.is_some() {
            return Err(format!("dead rank {r} was colored"));
        }
        if let Some(t) = colored_at {
            if r == 0 {
                continue;
            }
            let ok = trace.events.iter().any(|e| {
                e.kind == TraceKind::Deliver && e.to == r && e.payload.colors() && e.time == t
            });
            if !ok {
                return Err(format!("rank {r} colored at {t} without a delivery"));
            }
        }
    }
    for e in &trace.events {
        if e.kind == TraceKind::SendStart && e.payload.colors() {
            let sender_colored = out.colored_at[e.from as usize].is_some_and(|t| t <= e.time);
            if !sender_colored {
                return Err(format!("uncolored process sent a payload: {e}"));
            }
        }
    }

    // Monotone event times.
    for w in trace.events.windows(2) {
        if w[1].time < w[0].time {
            return Err("trace times regressed".into());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn corrected_tree_traces_satisfy_all_laws(
        p in 2u32..128,
        n_faults in 0u32..8,
        seed in 0u64..1_000_000,
        variant in 0usize..4,
    ) {
        let n_faults = n_faults.min(p - 1);
        let spec = [
            BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked),
            BroadcastSpec::corrected_tree(
                TreeKind::LAME2,
                CorrectionKind::OpportunisticOptimized { distance: 2 },
            ),
            BroadcastSpec::plain_tree(TreeKind::OPTIMAL),
            BroadcastSpec::ack_tree(TreeKind::BINOMIAL),
        ][variant];
        // Ack trees stall under faults (that is their documented flaw) —
        // traces still obey all laws.
        let logp = LogP::PAPER;
        let faults = FaultPlan::random_count(p, n_faults, seed).expect("plan");
        let (out, trace) = Simulation::builder(p, logp)
            .faults(faults)
            .seed(seed)
            .build()
            .run_traced(&spec)
            .expect("valid configuration");
        if let Err(msg) = check_trace_laws(&trace, &out, &logp) {
            prop_assert!(false, "{msg}");
        }
    }

    #[test]
    fn gossip_traces_satisfy_all_laws(
        p in 2u32..100,
        gossip_time in 4u64..30,
        seed in 0u64..1_000_000,
    ) {
        let spec = GossipSpec::time_limited(gossip_time, CorrectionKind::Checked);
        let logp = LogP::PAPER;
        let (out, trace) = Simulation::builder(p, logp)
            .seed(seed)
            .build()
            .run_traced(&spec)
            .expect("valid configuration");
        if let Err(msg) = check_trace_laws(&trace, &out, &logp) {
            prop_assert!(false, "{msg}");
        }
    }

    /// The receive port serializes deliveries: per rank, deliveries are
    /// at least `o` apart and never precede arrival + o.
    #[test]
    fn receive_port_discipline(
        p in 2u32..64,
        seed in 0u64..1_000_000,
    ) {
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 4 },
        );
        let logp = LogP::PAPER;
        let (_, trace) = Simulation::builder(p, logp)
            .seed(seed)
            .build()
            .run_traced(&spec)
            .expect("valid configuration");
        for r in 0..p {
            let delivers: Vec<_> = trace
                .events
                .iter()
                .filter(|e| e.kind == TraceKind::Deliver && e.to == r)
                .collect();
            for w in delivers.windows(2) {
                prop_assert!(
                    w[1].time.steps() >= w[0].time.steps() + logp.o(),
                    "rank {r}: deliveries closer than o"
                );
            }
        }
    }

    /// Sender port discipline: per rank, send starts are ≥ o apart.
    #[test]
    fn send_port_discipline(
        p in 2u32..64,
        seed in 0u64..1_000_000,
        l in 1u64..4,
        o in 1u64..3,
    ) {
        let logp = LogP::new(l, o, 1).expect("valid LogP");
        let spec = BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
        let (_, trace) = Simulation::builder(p, logp)
            .seed(seed)
            .build()
            .run_traced(&spec)
            .expect("valid configuration");
        for r in 0..p {
            let sends: Vec<_> = trace
                .events
                .iter()
                .filter(|e| e.kind == TraceKind::SendStart && e.from == r)
                .collect();
            for w in sends.windows(2) {
                prop_assert!(
                    w[1].time.steps() >= w[0].time.steps() + o,
                    "rank {r}: sends closer than o={o}"
                );
            }
        }
    }
}
