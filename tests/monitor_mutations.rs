//! Mutation-based tests for the streaming invariant monitor: each test
//! corrupts the golden trace in one specific way and asserts the
//! monitor flags it with the *right* invariant id — a monitor that
//! merely errors somewhere would pass a weaker test and miss
//! misclassified diagnoses.
//!
//! The combined violation report over all mutation classes is itself a
//! golden file (`tests/data/golden_violations.json`): the diagnosis
//! text and JSON schema are part of the tool's contract. Regenerate
//! after an intentional change with
//! `CT_REGEN_GOLDEN=1 cargo test --test monitor_mutations`.

use corrected_trees::analyze::parse_jsonl;
use corrected_trees::core::protocol::Payload;
use corrected_trees::logp::{LogP, Time};
use corrected_trees::obs::{Event, EventKind, MonitorConfig, MonitorReport, MonitorSink};

/// The ct-sim golden trace: P = 4 interleaved binomial, optimized
/// opportunistic correction (d = 2), rank 2 dead, seed 1, LogP paper.
const GOLDEN_TRACE: &str = include_str!("../crates/sim/tests/data/golden_p4.jsonl");

const GOLDEN_VIOLATIONS_PATH: &str = "tests/data/golden_violations.json";
const GOLDEN_VIOLATIONS: &str = include_str!("data/golden_violations.json");

fn golden_events() -> Vec<Event> {
    parse_jsonl(GOLDEN_TRACE).expect("golden trace parses")
}

fn golden_cfg() -> MonitorConfig {
    MonitorConfig::new()
        .with_p(4)
        .with_logp(LogP::PAPER)
        .with_failed(vec![false, false, true, false])
}

fn check(events: &[Event]) -> MonitorReport {
    MonitorSink::check(events, &golden_cfg())
}

fn ids(report: &MonitorReport) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = report.violations.iter().map(|v| v.invariant.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

// ---------------------------------------------------------------------
// The mutations, one per corruption class.

/// Drop the first Arrive: its send never completes (wire-complete) and
/// its delivery has no pending arrival (deliver-unmatched).
fn mutate_drop_arrive(events: &mut Vec<Event>) {
    let i = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::Arrive { .. }))
        .expect("golden trace has arrivals");
    events.remove(i);
}

/// Swap the payloads of two sends on one channel: the arrivals now
/// come back in the wrong order for FIFO matching (fifo-order).
fn mutate_swap_channel_sends(events: &mut [Event]) {
    let mut sends: Vec<usize> = Vec::new();
    let mut channel = None;
    for (i, e) in events.iter().enumerate() {
        if let EventKind::SendStart { from, to, payload } = e.kind {
            match channel {
                None => {
                    channel = Some((from, to, payload));
                    sends.push(i);
                }
                Some((f, t, p)) if f == from && t == to && p != payload => {
                    sends.push(i);
                    break;
                }
                _ => {}
            }
        }
    }
    assert_eq!(
        sends.len(),
        2,
        "golden trace reuses a channel with a different payload"
    );
    let (a, b) = (sends[0], sends[1]);
    let pa = payload_of(&events[a]);
    let pb = payload_of(&events[b]);
    set_payload(&mut events[a], pb);
    set_payload(&mut events[b], pa);
}

fn payload_of(e: &Event) -> Payload {
    match e.kind {
        EventKind::SendStart { payload, .. } => payload,
        _ => unreachable!("only called on sends"),
    }
}

fn set_payload(e: &mut Event, p: Payload) {
    if let EventKind::SendStart { payload, .. } = &mut e.kind {
        *payload = p;
    }
}

/// Forge a SendStart from the dead rank 2 (dead-silent).
fn mutate_forged_dead_send(events: &mut Vec<Event>) {
    let t = events[1].time;
    events.insert(
        1,
        Event::sim(
            t,
            EventKind::SendStart {
                from: 2,
                to: 3,
                payload: Payload::Correction,
            },
        ),
    );
}

/// Duplicate the first Tree delivery (deliver-once).
fn mutate_double_deliver(events: &mut Vec<Event>) {
    let i = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::Deliver { payload, .. } if payload.colors()))
        .expect("golden trace has coloring deliveries");
    let dup = events[i].clone();
    events.insert(i + 1, dup);
}

/// Remove a Colored event for a live rank (reliability).
fn mutate_drop_colored(events: &mut Vec<Event>) {
    let i = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::Colored { rank: 1, .. }))
        .expect("rank 1 gets colored");
    events.remove(i);
}

/// Rewind a mid-stream timestamp below its predecessor (time-monotone).
fn mutate_time_regression(events: &mut [Event]) {
    let i = events
        .iter()
        .position(|e| e.time > Time::new(2))
        .expect("golden trace advances past t=2");
    events[i].time = Time::ZERO;
}

fn mutated(mutation: fn(&mut Vec<Event>)) -> Vec<Event> {
    let mut events = golden_events();
    mutation(&mut events);
    events
}

/// A multiplexed stream: the golden broadcast run twice concurrently as
/// broadcasts 1 and 2, merged by timestamp the way the pub/sub layer's
/// per-topic streams would interleave on one cluster. Phase spans are
/// stripped so the monitor checks both broadcasts in a single
/// repetition buffer, keyed by id.
fn multiplexed_events() -> Vec<Event> {
    let mut merged: Vec<Event> = Vec::new();
    for b in [1u64, 2] {
        merged.extend(
            golden_events()
                .into_iter()
                .filter(|e| {
                    !matches!(
                        e.kind,
                        EventKind::PhaseBegin { .. } | EventKind::PhaseEnd { .. }
                    )
                })
                .map(|e| e.with_bcast(b)),
        );
    }
    merged.sort_by_key(|e| e.time);
    merged
}

// ---------------------------------------------------------------------
// Baseline + per-class detection.

#[test]
fn golden_trace_is_clean() {
    let report = check(&golden_events());
    assert!(report.is_ok(), "{}", report.render_text());
    assert_eq!(report.reps, 1);
}

#[test]
fn dropped_arrive_is_flagged() {
    let report = check(&mutated(mutate_drop_arrive));
    let ids = ids(&report);
    assert!(ids.contains(&"wire-complete"), "{}", report.render_text());
    assert!(
        ids.contains(&"deliver-unmatched"),
        "{}",
        report.render_text()
    );
}

#[test]
fn swapped_channel_sends_are_flagged() {
    let report = check(&mutated(|e| mutate_swap_channel_sends(e)));
    assert!(
        ids(&report).contains(&"fifo-order"),
        "{}",
        report.render_text()
    );
}

#[test]
fn forged_send_from_dead_rank_is_flagged() {
    let report = check(&mutated(mutate_forged_dead_send));
    assert!(
        ids(&report).contains(&"dead-silent"),
        "{}",
        report.render_text()
    );
}

#[test]
fn double_delivery_is_flagged() {
    let report = check(&mutated(mutate_double_deliver));
    assert!(
        ids(&report).contains(&"deliver-once"),
        "{}",
        report.render_text()
    );
}

#[test]
fn missing_coloring_is_flagged() {
    let report = check(&mutated(mutate_drop_colored));
    assert!(
        ids(&report).contains(&"reliability"),
        "{}",
        report.render_text()
    );
}

#[test]
fn time_regression_is_flagged() {
    let report = check(&mutated(|e| mutate_time_regression(e)));
    assert!(
        ids(&report).contains(&"time-monotone"),
        "{}",
        report.render_text()
    );
}

#[test]
fn multiplexed_golden_streams_are_clean() {
    // Two concurrent copies of a correct broadcast, distinguished only
    // by their `b` stamps, must validate: the monitor keys every
    // cross-rank invariant by broadcast id.
    let report = check(&multiplexed_events());
    assert!(report.is_ok(), "{}", report.render_text());
    assert_eq!(report.reps, 1);
}

#[test]
fn cross_wired_topic_delivery_is_flagged() {
    // Cross-wire one delivery between topics: restamp a broadcast-1
    // Deliver as broadcast 2. Broadcast 2 now delivers a message it
    // never saw arrive — exactly the confusion a monitor that ignored
    // the id stamps (pooling all topics into one matcher) would wave
    // through, since the pooled multiset is unchanged.
    let mut events = multiplexed_events();
    let i = events
        .iter()
        .position(|e| e.bcast == Some(1) && matches!(e.kind, EventKind::Deliver { .. }))
        .expect("broadcast 1 has deliveries");
    events[i] = events[i].clone().with_bcast(2);
    let report = check(&events);
    assert!(
        ids(&report).contains(&"deliver-unmatched"),
        "{}",
        report.render_text()
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("in broadcast 2")),
        "diagnosis names the wrong-topic broadcast: {}",
        report.render_text()
    );
}

#[test]
fn fail_fast_stops_at_the_first_violation() {
    let events = mutated(mutate_drop_arrive);
    let cfg = golden_cfg().with_fail_fast();
    let report = MonitorSink::check(&events, &cfg);
    assert_eq!(report.violations.len(), 1, "{}", report.render_text());
}

// ---------------------------------------------------------------------
// Golden violation report: one rep per mutation class, in a fixed
// order, serialized byte-for-byte.

#[test]
fn violation_report_is_byte_stable() {
    let mutations: [fn(&mut Vec<Event>); 6] = [
        mutate_drop_arrive,
        |e| mutate_swap_channel_sends(e),
        mutate_forged_dead_send,
        mutate_double_deliver,
        mutate_drop_colored,
        |e| mutate_time_regression(e),
    ];
    let mut combined = MonitorReport::default();
    for (rep, mutation) in mutations.into_iter().enumerate() {
        combined.absorb(check(&mutated(mutation)), rep as u32);
    }
    assert!(!combined.is_ok());
    let json = format!("{}\n", combined.to_json());
    if std::env::var_os("CT_REGEN_GOLDEN").is_some() {
        std::fs::write(GOLDEN_VIOLATIONS_PATH, &json).expect("write golden");
        return;
    }
    assert_eq!(
        json, GOLDEN_VIOLATIONS,
        "violation report diverged from the golden file; if intentional, \
         regenerate with CT_REGEN_GOLDEN=1 and review the diff"
    );
}
