//! "All our simulations are fully reproducible as we keep the random
//! generator seed of every experiment" (§4) — enforced here across the
//! whole stack: simulator runs, fault plans, campaigns and figure
//! pipelines.

use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::TreeKind;
use corrected_trees::exp::campaign::{Campaign, FaultSpec};
use corrected_trees::exp::Variant;
use corrected_trees::gossip::GossipSpec;
use corrected_trees::logp::LogP;
use corrected_trees::sim::{FaultPlan, Simulation};

#[test]
fn identical_seeds_reproduce_faulty_gossip_bit_for_bit() {
    let spec = GossipSpec::time_limited(18, CorrectionKind::Checked);
    let run = |seed: u64| {
        let faults = FaultPlan::random_rate(512, 0.02, seed).unwrap();
        let (out, trace) = Simulation::builder(512, LogP::PAPER)
            .faults(faults)
            .seed(seed)
            .build()
            .run_traced(&spec)
            .unwrap();
        (out, trace)
    };
    let (a_out, a_trace) = run(7);
    let (b_out, b_trace) = run(7);
    assert_eq!(a_out.colored_at, b_out.colored_at);
    assert_eq!(a_out.messages, b_out.messages);
    assert_eq!(a_out.events, b_out.events);
    assert_eq!(
        a_trace.events, b_trace.events,
        "full traces must be identical"
    );
}

#[test]
fn different_seeds_give_different_gossip_traces() {
    let spec = GossipSpec::time_limited(18, CorrectionKind::Checked);
    let run = |seed: u64| {
        Simulation::builder(512, LogP::PAPER)
            .seed(seed)
            .build()
            .run_traced(&spec)
            .unwrap()
            .1
    };
    assert_ne!(run(1).events, run(2).events);
}

#[test]
fn tree_broadcasts_are_seed_independent() {
    // Deterministic protocols must give identical results for any seed.
    let spec = BroadcastSpec::corrected_tree_sync(TreeKind::LAME2, CorrectionKind::Checked);
    let run = |seed: u64| {
        Simulation::builder(256, LogP::PAPER)
            .seed(seed)
            .build()
            .run(&spec)
            .unwrap()
    };
    let a = run(1);
    let b = run(999);
    assert_eq!(a.colored_at, b.colored_at);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.quiescence, b.quiescence);
}

#[test]
fn campaigns_reproduce_across_thread_counts() {
    let campaign = Campaign::new(
        Variant::tree_opportunistic(TreeKind::BINOMIAL, 4),
        512,
        LogP::PAPER,
    )
    .with_faults(FaultSpec::Rate(0.02))
    .with_reps(12)
    .with_seed(33);
    let one = campaign.run_parallel(1).unwrap();
    let four = campaign.run_parallel(4).unwrap();
    let eight = campaign.run_parallel(8).unwrap();
    assert_eq!(one, four);
    assert_eq!(one, eight);
}

#[test]
fn fault_plans_depend_only_on_their_inputs() {
    let a = FaultPlan::random_rate(10_000, 0.01, 5).unwrap();
    let b = FaultPlan::random_rate(10_000, 0.01, 5).unwrap();
    assert_eq!(a, b);
    assert_eq!(
        a.failed_ranks().collect::<Vec<_>>(),
        b.failed_ranks().collect::<Vec<_>>()
    );
}
