//! Per-topic equality for multiplexed broadcasts.
//!
//! The pub/sub layer's central correctness claim: running N topics
//! concurrently over one worker pool is *observationally equivalent*,
//! per topic, to running each topic alone. Every event the cluster
//! emits carries its broadcast id, so each topic's stream can be
//! filtered out of the multiplexed run and compared — after stripping
//! timestamps and the id stamp itself — against a solo run of the same
//! spec at the same seed.
//!
//! Only deterministic protocols qualify for exact stream equality:
//! plain trees (fault-free dissemination is schedule-independent) and
//! checked-paced synchronized correction with a provisioned barrier
//! (`sync_start_override` far past dissemination), whose per-rank send
//! sequences are fixed by the paper's discrete machine regardless of
//! interleaving. Opportunistic correction reacts to wall-clock timing
//! and is exercised by the count-level tests in `ct-runtime` instead.

use std::time::Duration;

use corrected_trees::core::{
    correction::CorrectionKind,
    protocol::{BroadcastSpec, Payload},
    tree::TreeKind,
};
use corrected_trees::logp::LogP;
use corrected_trees::obs::{Event, EventKind, VecSink};
use corrected_trees::runtime::{Cluster, PubsubOptions, Topic, TopicTable};
use corrected_trees::sim::Simulation;

/// Canonical multiset of a stream's semantic content: every event kind
/// rendered without its timestamps or broadcast stamp, sorted. Two
/// streams with equal canonical forms describe the same broadcast — the
/// same sends, arrivals, deliveries, colorings, and phase structure —
/// even if the runs interleaved differently.
fn canonical(events: &[Event]) -> Vec<String> {
    let mut keys: Vec<String> = events.iter().map(|e| format!("{:?}", e.kind)).collect();
    keys.sort();
    keys
}

/// Message-only multiset (send/arrive/deliver), for comparison against
/// the simulator, whose stream carries LogP-timed phase spans that are
/// not expected to mirror the cluster's wall-clock spans one-to-one.
fn message_multiset(events: &[Event]) -> Vec<(&'static str, u32, u32, Payload)> {
    let mut keys: Vec<_> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::SendStart { from, to, payload } => Some(("send", from, to, payload)),
            EventKind::Arrive { from, to, payload } => Some(("arrive", from, to, payload)),
            EventKind::Deliver { from, to, payload } => Some(("deliver", from, to, payload)),
            _ => None,
        })
        .collect();
    keys.sort_by_key(|&(tag, from, to, p)| (tag, from, to, format!("{p:?}")));
    keys
}

/// Colored set with provenance: which ranks colored, and how.
fn colored(events: &[Event]) -> Vec<(u32, String)> {
    let mut out: Vec<_> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Colored { rank, via } => Some((rank, format!("{via:?}"))),
            _ => None,
        })
        .collect();
    out.sort();
    out
}

/// The ISSUE's four deterministic topics at P=512: varied roots and
/// tree shapes, one with checked-paced synchronized correction behind a
/// provisioned barrier.
fn equality_topics(p: u32) -> TopicTable {
    let mut table = TopicTable::new();
    table.push(Topic::new(
        "plain-binomial-r0",
        BroadcastSpec::plain_tree(TreeKind::BINOMIAL),
        p,
        11,
    ));
    table.push(Topic::new(
        "plain-binomial-r37",
        BroadcastSpec::plain_tree(TreeKind::BINOMIAL).with_root(37),
        p,
        12,
    ));
    table.push(Topic::new(
        "plain-lame2-r101",
        BroadcastSpec::plain_tree(TreeKind::LAME2).with_root(101),
        p,
        13,
    ));
    let mut checked = BroadcastSpec::corrected_tree_sync(
        TreeKind::BINOMIAL,
        CorrectionKind::checked_paced(&LogP::PAPER, 4),
    )
    .with_root(200);
    // Provision the synchronized start well past wall-clock
    // dissemination at P=512 so every rank participates in correction
    // and Corollary 1 holds exactly (150 ms >> tree time on one core).
    checked.sync_start_override = Some(150_000);
    table.push(Topic::new("checked-sync-r200", checked, p, 14));
    table
}

#[test]
fn multiplexed_topic_streams_equal_solo_runs_at_p512_k4() {
    let p = 512u32;
    let table = equality_topics(p);
    let opts = PubsubOptions { k: 4, rounds: 1 };

    // Multiplexed run: all four topics admitted together (k = 4), one
    // VecSink per topic.
    let mut cluster = Cluster::new(p, LogP::PAPER);
    cluster.set_timeout(Duration::from_secs(60));
    let mut sinks: Vec<VecSink> = (0..table.len()).map(|_| VecSink::new()).collect();
    {
        let mut refs: Vec<&mut dyn corrected_trees::obs::EventSink> = sinks
            .iter_mut()
            .map(|s| s as &mut dyn corrected_trees::obs::EventSink)
            .collect();
        let report = cluster
            .run_pubsub_observed(&table, &opts, &mut refs)
            .expect("multiplexed run");
        assert!(report.completed(), "multiplexed outcomes: {report:?}");
        assert_eq!(report.outcomes.len(), table.len());
    }

    // Every event in a topic's sink must carry that topic's broadcast
    // id — the filtering the equality claim rests on.
    for sink in &sinks {
        let ids: std::collections::BTreeSet<_> = sink.events.iter().map(|e| e.bcast).collect();
        assert_eq!(ids.len(), 1, "one broadcast id per topic per round");
        assert!(ids.iter().all(|id| id.is_some()));
    }

    // Solo baselines: each topic alone, k = 1, fresh cluster, same
    // seed and spec. The pub/sub driver is its own baseline so both
    // sides share completion semantics (quiescence, not first-colored
    // truncation).
    for (t, topic) in table.iter().enumerate() {
        let mut solo_table = TopicTable::new();
        solo_table.push(topic.clone());
        let mut solo_cluster = Cluster::new(p, LogP::PAPER);
        solo_cluster.set_timeout(Duration::from_secs(60));
        let mut solo_sink = VecSink::new();
        {
            let mut refs: Vec<&mut dyn corrected_trees::obs::EventSink> = vec![&mut solo_sink];
            let report = solo_cluster
                .run_pubsub_observed(&solo_table, &PubsubOptions { k: 1, rounds: 1 }, &mut refs)
                .expect("solo run");
            assert!(report.completed(), "solo {}: {report:?}", topic.label);
        }
        assert_eq!(
            canonical(&sinks[t].events),
            canonical(&solo_sink.events),
            "topic {} stream diverged from its solo run",
            topic.label
        );
        let expected: Vec<(u32, String)> = (0..p)
            .map(|r| {
                let via = if r == topic.spec.root {
                    "Root"
                } else {
                    "Dissemination"
                };
                (r, via.to_string())
            })
            .collect();
        assert_eq!(
            colored(&sinks[t].events),
            expected,
            "topic {}: every rank colors via dissemination",
            topic.label
        );
    }
}

#[test]
fn multiplexed_checked_topic_matches_simulator_multiset() {
    // Cross-driver check: the checked-paced topic's per-topic stream
    // out of a k=4 multiplexed cluster run carries the same message
    // multiset as the LogP simulator running the same spec — the
    // schedule-independence of the paper's paced machine, now holding
    // even under topic multiplexing.
    let p = 128u32;
    let mut spec = BroadcastSpec::corrected_tree_sync(
        TreeKind::BINOMIAL,
        CorrectionKind::checked_paced(&LogP::PAPER, 4),
    )
    .with_root(9);
    spec.sync_start_override = Some(60_000);

    let mut table = TopicTable::new();
    for t in 0..4u32 {
        table.push(Topic::new(
            format!("checked-{t}"),
            spec,
            p,
            21 + u64::from(t),
        ));
    }

    let mut cluster = Cluster::new(p, LogP::PAPER);
    cluster.set_timeout(Duration::from_secs(60));
    let mut sinks: Vec<VecSink> = (0..table.len()).map(|_| VecSink::new()).collect();
    {
        let mut refs: Vec<&mut dyn corrected_trees::obs::EventSink> = sinks
            .iter_mut()
            .map(|s| s as &mut dyn corrected_trees::obs::EventSink)
            .collect();
        let report = cluster
            .run_pubsub_observed(&table, &PubsubOptions { k: 4, rounds: 1 }, &mut refs)
            .expect("multiplexed run");
        assert!(report.completed(), "{report:?}");
    }

    let mut sim_sink = VecSink::new();
    Simulation::builder(p, LogP::PAPER)
        .build()
        .run_with_sink(&spec, &mut sim_sink)
        .expect("sim run");

    let reference = message_multiset(&sim_sink.events);
    // Corollary 1: (P-1) tree sends + M*P correction sends, each
    // arriving and delivering exactly once fault-free.
    let m = 5u64; // 3 + ceil(l/o) with LogP::PAPER
    let expected_msgs = (u64::from(p) - 1) + m * u64::from(p);
    assert_eq!(reference.len() as u64, 3 * expected_msgs);
    for (t, sink) in sinks.iter().enumerate() {
        assert_eq!(
            message_multiset(&sink.events),
            reference,
            "topic {t} diverged from the simulator"
        );
    }
}
