//! Reliability guarantees of §2.1 under randomized and adversarial
//! failures, across crates: topologies (ct-core) + simulator (ct-sim).
//!
//! *Non-faulty liveness*: a broadcast initiated by a live root is
//! received by all live processes — guaranteed unconditionally by
//! checked correction, and by opportunistic correction whenever the
//! maximum gap is at most `2d`.

use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::{Ordering, TreeKind};
use corrected_trees::logp::LogP;
use corrected_trees::sim::{FaultPlan, Simulation};
use proptest::prelude::*;

fn run(spec: BroadcastSpec, p: u32, faults: FaultPlan, seed: u64) -> corrected_trees::sim::Outcome {
    Simulation::builder(p, LogP::PAPER)
        .faults(faults)
        .seed(seed)
        .build()
        .run(&spec)
        .expect("valid configuration")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checked correction colors every live process for *any* fault set
    /// (with live root), any tree shape, synchronized or overlapped.
    #[test]
    fn checked_correction_always_achieves_nonfaulty_liveness(
        p in 2u32..200,
        fault_fraction in 0.0f64..0.35,
        seed in 0u64..1_000_000,
        tree_idx in 0usize..6,
        synchronized in any::<bool>(),
    ) {
        let kind = [
            TreeKind::BINOMIAL,
            TreeKind::FOUR_ARY,
            TreeKind::LAME2,
            TreeKind::OPTIMAL,
            TreeKind::Binomial { order: Ordering::InOrder },
            TreeKind::Kary { k: 2, order: Ordering::InOrder },
        ][tree_idx];
        let spec = if synchronized {
            BroadcastSpec::corrected_tree_sync(kind, CorrectionKind::Checked)
        } else {
            BroadcastSpec::corrected_tree(kind, CorrectionKind::Checked)
        };
        let faults = FaultPlan::random_rate(p, fault_fraction, seed).expect("plan");
        let out = run(spec, p, faults, seed);
        prop_assert!(
            out.all_live_colored(),
            "uncolored live: {:?}", out.uncolored_live()
        );
    }

    /// Failure-proof correction gives the same guarantee (with its
    /// extra acknowledgment traffic).
    #[test]
    fn failure_proof_correction_achieves_nonfaulty_liveness(
        p in 2u32..150,
        fault_fraction in 0.0f64..0.4,
        seed in 0u64..1_000_000,
    ) {
        let spec = BroadcastSpec::corrected_tree(TreeKind::BINOMIAL, CorrectionKind::FailureProof);
        let faults = FaultPlan::random_rate(p, fault_fraction, seed).expect("plan");
        let out = run(spec, p, faults, seed);
        prop_assert!(out.all_live_colored(), "{:?}", out.uncolored_live());
    }

    /// §4.2: in a k-ary interleaved tree, opportunistic correction with
    /// distance d ≥ k is guaranteed to tolerate up to k-1 failures.
    #[test]
    fn kary_opportunistic_tolerates_k_minus_one_failures(
        k in 2u32..6,
        n_exp in 4u32..9,
        seed in 0u64..1_000_000,
    ) {
        let p = 1u32 << n_exp;
        let kind = TreeKind::Kary { k, order: Ordering::Interleaved };
        let spec = BroadcastSpec::corrected_tree(
            kind,
            CorrectionKind::OpportunisticOptimized { distance: k },
        );
        let faults = FaultPlan::random_count(p, k - 1, seed).expect("plan");
        let out = run(spec, p, faults, seed);
        prop_assert!(out.all_live_colored(), "k={k} P={p}: {:?}", out.uncolored_live());
    }

    /// Delayed correction also restores liveness (probing covers gaps)
    /// given a generous delay.
    #[test]
    fn delayed_correction_achieves_nonfaulty_liveness(
        p in 2u32..120,
        n_faults in 0u32..6,
        seed in 0u64..1_000_000,
    ) {
        let n_faults = n_faults.min(p - 1);
        let spec = BroadcastSpec::corrected_tree_sync(
            TreeKind::BINOMIAL,
            CorrectionKind::Delayed { delay: 3 * LogP::PAPER.transit_steps() },
        );
        let faults = FaultPlan::random_count(p, n_faults, seed).expect("plan");
        let out = run(spec, p, faults, seed);
        prop_assert!(out.all_live_colored(), "{:?}", out.uncolored_live());
    }
}

#[test]
fn adversarial_all_root_children_fail() {
    // The worst case for a binomial tree: every child of the root dies.
    // Only the root is dissemination-colored; checked correction must
    // still cover the whole ring.
    let p = 64u32;
    let tree = TreeKind::BINOMIAL.build(p, &LogP::PAPER).unwrap();
    let root_children: Vec<u32> =
        corrected_trees::core::tree::Topology::children(&tree, 0).to_vec();
    let spec = BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
    let faults = FaultPlan::from_ranks(p, &root_children).unwrap();
    let out = run(spec, p, faults, 1);
    assert!(out.all_live_colored(), "{:?}", out.uncolored_live());
}

#[test]
fn adversarial_contiguous_ring_block_fails() {
    let p = 128u32;
    let block: Vec<u32> = (40..70).collect();
    let spec = BroadcastSpec::corrected_tree_sync(TreeKind::LAME2, CorrectionKind::Checked);
    let faults = FaultPlan::from_ranks(p, &block).unwrap();
    let out = run(spec, p, faults, 1);
    assert!(out.all_live_colored(), "{:?}", out.uncolored_live());
}

#[test]
fn opportunistic_coverage_boundary_is_exactly_2d() {
    // §3.1: opportunistic correction colors all processes only if the
    // maximum gap does not exceed 2d. A chain topology (k = 1) makes
    // the boundary exact: killing rank x orphans the contiguous tail
    // [x, P), a gap of size P - x. Synchronized mode keeps correction-
    // colored processes silent, so nothing re-seeds the gap.
    let p = 64u32;
    let d = 3u32;
    let kind = TreeKind::Kary {
        k: 1,
        order: Ordering::Interleaved,
    };
    let spec =
        BroadcastSpec::corrected_tree_sync(kind, CorrectionKind::Opportunistic { distance: d });

    // Gap of exactly 2d: covered from the left (rank x-1 reaches x+d-1)
    // and across the ring wrap (rank 0 reaches back to P-d).
    let x = p - 2 * d;
    let out = run(spec, p, FaultPlan::from_ranks(p, &[x]).unwrap(), 1);
    assert!(out.all_live_colored(), "gap 2d: {:?}", out.uncolored_live());

    // Gap of 2d + 1: the middle process P-d-1 is beyond both reaches.
    let x = p - 2 * d - 1;
    let out = run(spec, p, FaultPlan::from_ranks(p, &[x]).unwrap(), 1);
    assert_eq!(
        out.uncolored_live(),
        vec![p - d - 1],
        "exactly the middle of the too-large gap stays dark"
    );
}
