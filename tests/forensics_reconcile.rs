//! Failure forensics must reconcile with the simulator's own metrics:
//! the rescue provenance is derived purely from the event stream, the
//! outcome counters purely from protocol state — agreement between the
//! two is an end-to-end check on both.

use corrected_trees::analyze::{analyze_forensics, WasteReport};
use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::TreeKind;
use corrected_trees::logp::LogP;
use corrected_trees::obs::VecSink;
use corrected_trees::sim::{FaultPlan, Outcome, Simulation};

fn faulty_run(
    p: u32,
    faults: u32,
    seed: u64,
) -> (Outcome, Vec<corrected_trees::obs::Event>, Vec<bool>) {
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 4 },
    );
    let plan = FaultPlan::random_count_protecting(p, faults, seed, 0).expect("valid plan");
    let mask = plan.mask().to_vec();
    let mut sink = VecSink::new();
    let out = Simulation::builder(p, LogP::PAPER)
        .faults(plan)
        .seed(seed)
        .build()
        .run_with_sink(&spec, &mut sink)
        .expect("valid configuration");
    (out, sink.events, mask)
}

#[test]
fn every_orphan_is_attributed_to_a_rescuer() {
    for seed in [3, 5, 11] {
        let (out, events, mask) = faulty_run(64, 3, seed);
        assert!(out.all_live_colored(), "seed {seed}");
        let tree = TreeKind::BINOMIAL.build(64, &LogP::PAPER).expect("tree");
        let report = analyze_forensics(&events, &tree, &mask, &LogP::PAPER);

        let failed: Vec<u32> = (0..64u32).filter(|&r| mask[r as usize]).collect();
        assert_eq!(report.failed_ranks, failed, "seed {seed}");
        assert_eq!(
            report.impacts.len(),
            failed.len(),
            "one impact per failure (seed {seed})"
        );
        assert_eq!(report.unrescued, 0, "seed {seed}: {}", report.render_text());
        for impact in &report.impacts {
            for orphan in &impact.orphans {
                assert!(
                    orphan.rescuer.is_some(),
                    "seed {seed}: orphan {} of failure {} has no rescuer",
                    orphan.rank,
                    impact.failed
                );
                assert!(orphan.colored_at.is_some());
            }
        }
    }
}

#[test]
fn rescue_counts_reconcile_with_message_counts() {
    for seed in [3, 5, 11] {
        let (out, events, mask) = faulty_run(64, 3, seed);
        let tree = TreeKind::BINOMIAL.build(64, &LogP::PAPER).expect("tree");
        let report = analyze_forensics(&events, &tree, &mask, &LogP::PAPER);

        // The trace-derived correction-coloring count must equal the
        // simulator's own tally, and each such coloring consumed at
        // least one correction message.
        assert_eq!(
            report.colored_via_correction,
            u64::from(out.correction_colored()),
            "seed {seed}"
        );
        assert!(
            report.colored_via_correction <= out.messages.correction,
            "seed {seed}: {} correction colorings from {} correction sends",
            report.colored_via_correction,
            out.messages.correction
        );

        // Waste accounting is bounded by the same totals.
        let waste = WasteReport::from_events(&events, &mask);
        assert_eq!(waste.sends, out.messages.total(), "seed {seed}");
        assert!(waste.correction_sends_to_colored <= out.messages.correction);
        assert!(waste.wasted_total() <= waste.sends);
    }
}

#[test]
fn fault_free_run_has_empty_forensics() {
    let (out, events, mask) = faulty_run(64, 0, 1);
    assert!(out.all_live_colored());
    let tree = TreeKind::BINOMIAL.build(64, &LogP::PAPER).expect("tree");
    let report = analyze_forensics(&events, &tree, &mask, &LogP::PAPER);
    assert!(report.failed_ranks.is_empty());
    assert!(report.impacts.is_empty());
    assert_eq!(report.orphan_count(), 0);
    assert_eq!(report.unrescued, 0);
}
