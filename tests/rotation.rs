//! Broadcasts rooted at arbitrary ranks (the "without loss of
//! generality" of §2, made executable): rotation preserves all protocol
//! costs and guarantees.

use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::TreeKind;
use corrected_trees::logp::LogP;
use corrected_trees::sim::{FaultPlan, Simulation};
use proptest::prelude::*;

#[test]
fn rotated_broadcast_starts_at_the_new_root() {
    let p = 64u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL).with_root(17);
    let out = Simulation::builder(p, LogP::PAPER)
        .build()
        .run(&spec)
        .unwrap();
    assert!(out.all_live_colored());
    assert_eq!(out.colored_at[17], Some(corrected_trees::logp::Time::ZERO));
    assert!(out.colored_at[0].unwrap() > corrected_trees::logp::Time::ZERO);
}

#[test]
fn rotation_preserves_latency_and_messages() {
    let p = 256u32;
    let logp = LogP::PAPER;
    let deadline = TreeKind::LAME2
        .build(p, &logp)
        .unwrap()
        .dissemination_deadline(&logp)
        .steps();
    for root in [0u32, 1, 100, 255] {
        let spec = BroadcastSpec::corrected_tree_sync(TreeKind::LAME2, CorrectionKind::Checked)
            .with_root(root);
        let out = Simulation::builder(p, logp).build().run(&spec).unwrap();
        assert!(out.all_live_colored());
        // Rotation is an isomorphism: identical totals for every root.
        assert_eq!(out.messages.tree, (p - 1) as u64, "root {root}");
        assert_eq!(out.messages.correction, 5 * p as u64, "root {root}");
        assert_eq!(out.quiescence.steps(), deadline + 8, "root {root}");
    }
}

#[test]
fn out_of_range_root_is_rejected() {
    use ct_core::protocol::{BuildCtx, ProtocolFactory};
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL).with_root(8);
    let ctx = BuildCtx {
        p: 8,
        logp: LogP::PAPER,
        seed: 0,
    };
    assert!(spec.build(&ctx).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Non-faulty liveness holds for any root, with failures placed
    /// anywhere except the broadcasting process itself.
    #[test]
    fn any_root_heals_failures(
        p in 2u32..150,
        root_seed in any::<u32>(),
        n_faults in 0u32..6,
        seed in 0u64..1_000_000,
    ) {
        let root = root_seed % p;
        let n_faults = n_faults.min(p - 1);
        let spec = BroadcastSpec::corrected_tree(TreeKind::BINOMIAL, CorrectionKind::Checked)
            .with_root(root);
        // Faults can hit anyone except the broadcasting process — in
        // particular physical rank 0 may die when it is not the root.
        let faults = FaultPlan::random_count_protecting(p, n_faults, seed, root).expect("plan");
        let out = Simulation::builder(p, LogP::PAPER)
            .faults(faults)
            .seed(seed)
            .build()
            .run(&spec)
            .expect("valid configuration");
        prop_assert!(out.all_live_colored(), "root {root}: {:?}", out.uncolored_live());
    }
}
