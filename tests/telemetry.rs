//! Telemetry contract tests across both drivers.
//!
//! Three guarantees: attaching a [`TelemetryHub`] never perturbs what a
//! run computes (traces and outcomes are byte-identical on vs off); a
//! single-worker cluster run produces exactly predictable counters
//! (the instrumentation counts what it claims to count); and a forced
//! stall yields a [`StallReport`] naming precisely the stranded ranks.

use std::sync::Arc;

use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::TreeKind;
use corrected_trees::logp::LogP;
use corrected_trees::obs::telemetry::TelemetryHub;
use corrected_trees::obs::VecSink;
use corrected_trees::runtime::{Cluster, ClusterConfig};
use corrected_trees::sim::{FaultPlan, Simulation};

/// Run the reference corrected-tree sim twice — with and without a
/// telemetry hub — and require identical event streams and outcomes.
/// Telemetry must be a pure observer of the simulation.
#[test]
fn sim_trace_is_byte_identical_with_telemetry_attached() {
    let p = 64u32;
    let seed = 42u64;
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        corrected_trees::core::correction::CorrectionKind::OpportunisticOptimized { distance: 4 },
    );
    let plan = FaultPlan::random_count_protecting(p, 3, seed, 0).unwrap();

    let mut plain_sink = VecSink::new();
    let plain_out = Simulation::builder(p, LogP::PAPER)
        .faults(plan.clone())
        .seed(seed)
        .build()
        .run_with_sink(&spec, &mut plain_sink)
        .unwrap();

    let hub = Arc::new(TelemetryHub::new(1, p as usize));
    let mut obs_sink = VecSink::new();
    let obs_out = Simulation::builder(p, LogP::PAPER)
        .faults(plan)
        .seed(seed)
        .telemetry(Arc::clone(&hub))
        .build()
        .run_with_sink(&spec, &mut obs_sink)
        .unwrap();

    assert_eq!(plain_sink.events, obs_sink.events);
    assert_eq!(plain_out.events, obs_out.events);
    assert_eq!(plain_out.messages.total(), obs_out.messages.total());
    assert_eq!(plain_out.colored_at, obs_out.colored_at);

    // And the hub did observe the one rep it was attached to.
    let snap = hub.snapshot();
    assert_eq!(snap.counter("sim.reps"), 1);
    assert_eq!(snap.counter("sim.events"), obs_out.events);
    assert_eq!(snap.counter("sim.sends"), obs_out.messages.total());
}

/// A cluster run with telemetry attached must report the same protocol
/// results as one without: the hub only reads, never steers.
#[test]
fn cluster_results_are_identical_with_telemetry_attached() {
    let p = 8u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let dead = vec![false; p as usize];

    let mut plain = Cluster::new(p, LogP::PAPER);
    let plain_report = plain.run_broadcast(&spec, &dead, 7).unwrap();

    let hub = Arc::new(TelemetryHub::new(2, p as usize));
    let cfg = ClusterConfig::new().threads(2).telemetry(Arc::clone(&hub));
    let mut observed = Cluster::with_config(p, LogP::PAPER, cfg);
    let obs_report = observed.run_broadcast(&spec, &dead, 7).unwrap();

    assert!(plain_report.completed && obs_report.completed);
    assert_eq!(plain_report.messages, 7);
    assert_eq!(obs_report.messages, 7);
    assert_eq!(plain_report.uncolored, obs_report.uncolored);
    assert_eq!(hub.snapshot().counter("msgs.delivered"), 7);
}

/// On a single worker a fault-free plain binomial broadcast at P=8 is
/// fully deterministic, so every counter has one exact value: one
/// batch of all 8 ranks, 8 quanta, 7 tree messages, one coordinator
/// flush coloring all 8 ranks, and nothing stale, spilled or retried.
#[test]
fn single_worker_counters_are_exact() {
    let p = 8u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let hub = Arc::new(TelemetryHub::new(1, p as usize));
    let cfg = ClusterConfig::new().threads(1).telemetry(Arc::clone(&hub));
    let mut cluster = Cluster::with_config(p, LogP::PAPER, cfg);
    let report = cluster
        .run_broadcast(&spec, &vec![false; p as usize], 0)
        .unwrap();
    assert!(report.completed);

    let snap = hub.snapshot();
    assert_eq!(snap.counter("sched.quanta"), 8, "one quantum per rank");
    assert_eq!(snap.counter("sched.stale_quanta"), 0);
    assert_eq!(snap.counter("sched.batches"), 1, "all ranks in one batch");
    assert_eq!(snap.counter("sched.lost_wakeup_rechecks"), 0);
    assert_eq!(snap.counter("sched.wakes"), 0, "single worker never parks");
    assert_eq!(snap.counter("msgs.sent"), 7);
    assert_eq!(snap.counter("msgs.delivered"), 7);
    assert_eq!(snap.counter("msgs.stale_dropped"), 0);
    assert_eq!(snap.counter("mailbox.pushes"), 7);
    assert_eq!(snap.counter("mailbox.spills"), 0);
    assert_eq!(snap.counter("timer.arms"), 0, "plain tree arms no timers");
    assert_eq!(snap.counter("timer.fires"), 0);
    assert_eq!(snap.counter("timer.cascades"), 0);
    assert_eq!(snap.counter("coord.batches"), 1);
    assert_eq!(snap.counter("coord.colored"), 8);

    assert_eq!(snap.gauges.get("mailbox.hwm"), Some(&1));
    assert_eq!(snap.gauges.get("runq.depth"), Some(&8));
    assert_eq!(snap.gauges.get("timers.pending"), Some(&0));

    let batch = snap.histograms.get("sched.batch_size").unwrap();
    assert_eq!((batch.count(), batch.sum()), (1, 8));
    let runq = snap.histograms.get("sched.runq_depth").unwrap();
    assert_eq!((runq.count(), runq.sum()), (1, 8));
    let drained = snap.histograms.get("mailbox.drained").unwrap();
    assert_eq!((drained.count(), drained.sum()), (8, 7));
    assert_eq!(drained.max(), Some(1), "no rank ever drains two at once");
}

/// Killing rank 1 under a plain (uncorrected) binomial tree at P=8
/// strands exactly its subtree {3, 5, 7}; the watchdog's stall report
/// must name those ranks and no others, each unscheduled with an empty
/// mailbox (stranded, not stuck).
#[test]
fn stall_report_names_the_stranded_ranks() {
    let p = 8u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let mut dead = vec![false; p as usize];
    dead[1] = true;

    let hub = Arc::new(TelemetryHub::new(2, p as usize));
    let cfg = ClusterConfig::new()
        .threads(2)
        .timeout(std::time::Duration::from_millis(200))
        .telemetry(Arc::clone(&hub));
    let mut cluster = Cluster::with_config(p, LogP::PAPER, cfg);
    let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();

    assert!(!report.completed);
    assert_eq!(report.uncolored, vec![3, 5, 7]);
    let stall = report.stall.expect("timed-out run carries a StallReport");
    assert_eq!(stall.stranded(), vec![3, 5, 7]);
    for rank in &stall.ranks {
        assert!(!rank.scheduled, "stranded rank {} not runnable", rank.rank);
        assert_eq!(rank.mailbox_len, 0, "stranded rank {} idle", rank.rank);
    }
    let text = stall.render_text();
    assert!(text.contains("stall: broadcast"), "{text}");
    assert!(text.contains("rank     3:"), "{text}");
    // The report is also structured JSON carrying the stranded set.
    let json = stall.to_json();
    for rank in [3, 5, 7] {
        assert!(json.contains(&format!("{{\"rank\":{rank},")), "{json}");
    }
    assert!(json.contains("\"colored\":4"), "{json}");
}
