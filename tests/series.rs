//! Continuous-sampler contract tests across both drivers.
//!
//! Three guarantees: attaching the background sampler never perturbs
//! what a run computes (traces and outcomes are byte-identical on vs
//! off, in the simulator and on the cluster); a forced cluster stall
//! fires the `stall_precursor` health rule strictly before the
//! watchdog expires, and the event shows up in all three places it is
//! promised — `RunReport::health`, the `ct-series-v1` JSONL export and
//! the `ct-postmortem-v1` dump; and the series ring retains exactly
//! the newest `min(cap, pushed)` windows for any push sequence.

use std::sync::Arc;
use std::time::Duration;

use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::TreeKind;
use corrected_trees::logp::LogP;
use corrected_trees::obs::health::Severity;
use corrected_trees::obs::series::{SeriesRing, SeriesSample};
use corrected_trees::obs::telemetry::TelemetryHub;
use corrected_trees::obs::VecSink;
use corrected_trees::runtime::{Cluster, ClusterConfig};
use corrected_trees::sim::{FaultPlan, Simulation};
use proptest::prelude::*;

/// Simulator purity: a run with the sampler polling in the background
/// must produce byte-identical events and outcomes to one without.
#[test]
fn sim_trace_is_byte_identical_with_sampler_attached() {
    let p = 64u32;
    let seed = 42u64;
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 4 },
    );
    let plan = FaultPlan::random_count_protecting(p, 3, seed, 0).unwrap();

    let mut plain_sink = VecSink::new();
    let plain_out = Simulation::builder(p, LogP::PAPER)
        .faults(plan.clone())
        .seed(seed)
        .build()
        .run_with_sink(&spec, &mut plain_sink)
        .unwrap();

    let hub = Arc::new(TelemetryHub::new(1, p as usize));
    let mut obs_sink = VecSink::new();
    let sim = Simulation::builder(p, LogP::PAPER)
        .faults(plan)
        .seed(seed)
        .telemetry(Arc::clone(&hub))
        .sample(Duration::from_millis(5))
        .build();
    let obs_out = sim.run_with_sink(&spec, &mut obs_sink).unwrap();

    assert_eq!(plain_sink.events, obs_sink.events);
    assert_eq!(plain_out.events, obs_out.events);
    assert_eq!(plain_out.messages.total(), obs_out.messages.total());
    assert_eq!(plain_out.colored_at, obs_out.colored_at);
    // The sampler really was attached and sampling this run.
    assert!(sim.series().is_some());
}

/// Cluster purity: sampling changes nothing about the protocol result.
#[test]
fn cluster_results_are_identical_with_sampler_attached() {
    let p = 8u32;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let dead = vec![false; p as usize];

    let mut plain = Cluster::with_config(p, LogP::PAPER, ClusterConfig::new().threads(2));
    let plain_report = plain.run_broadcast(&spec, &dead, 7).unwrap();

    let hub = Arc::new(TelemetryHub::new(2, p as usize));
    let cfg = ClusterConfig::new()
        .threads(2)
        .telemetry(Arc::clone(&hub))
        .sample(Duration::from_millis(5));
    let mut observed = Cluster::with_config(p, LogP::PAPER, cfg);
    let obs_report = observed.run_broadcast(&spec, &dead, 7).unwrap();

    assert!(plain_report.completed && obs_report.completed);
    assert_eq!(plain_report.messages, obs_report.messages);
    assert_eq!(plain_report.uncolored, obs_report.uncolored);
    assert!(plain_report.health.is_empty());
    assert!(obs_report.health.is_empty(), "{:?}", obs_report.health);
    // Sampling off means no store; on means the store saw the run.
    assert!(plain.series().is_none());
    let store = observed.series().expect("sampler attached");
    // Give the 5 ms sampler one more window, then check it sampled.
    std::thread::sleep(Duration::from_millis(30));
    assert!(!store.samples().is_empty());
}

/// The acceptance scenario: a plain (correction-free) binomial
/// broadcast with rank 1 dead strands ranks {3, 5, 7}. The
/// `stall_precursor` rule must fire strictly before the watchdog
/// expires and the event must land in the run report, the series
/// export and the postmortem dump.
#[test]
fn forced_stall_fires_precursor_before_watchdog_everywhere() {
    let p = 8u32;
    let watchdog_ms = 1_500u64;
    let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let mut dead = vec![false; p as usize];
    dead[1] = true;

    let hub = Arc::new(TelemetryHub::new(2, p as usize));
    let cfg = ClusterConfig::new()
        .threads(2)
        .telemetry(Arc::clone(&hub))
        .sample(Duration::from_millis(30))
        .timeout(Duration::from_millis(watchdog_ms))
        .flight(1024);
    let mut cluster = Cluster::with_config(p, LogP::PAPER, cfg);
    let report = cluster.run_broadcast(&spec, &dead, 7).unwrap();

    assert!(!report.completed);
    assert_eq!(report.uncolored, vec![3, 5, 7]);

    // 1. The run report carries the precursor, fired strictly before
    //    the watchdog expired. The sampler clock starts at cluster
    //    construction — before the run — so t_ms < watchdog_ms proves
    //    the event predates the expiry.
    let precursor = report
        .health
        .iter()
        .find(|e| e.rule == "stall_precursor")
        .expect("stall precursor fired");
    assert_eq!(precursor.severity, Severity::Critical);
    assert!(
        precursor.t_ms < watchdog_ms,
        "precursor at {} ms, watchdog at {} ms",
        precursor.t_ms,
        watchdog_ms
    );
    assert!(precursor.message.contains("before the watchdog"));

    // 2. The series export carries it as an interleaved health line.
    let store = cluster.series().expect("sampler attached");
    let jsonl = store.export_jsonl();
    let health_line = jsonl
        .lines()
        .find(|l| l.contains("\"kind\":\"health\"") && l.contains("\"rule\":\"stall_precursor\""))
        .expect("series export carries the precursor");
    assert!(health_line.starts_with("{\"schema\":\"ct-series-v1\""));

    // 3. The postmortem dump's precursor timeline carries it too.
    let pm = report.postmortem.as_ref().expect("flight recorder dumped");
    assert!(pm.health.iter().any(|e| e.rule == "stall_precursor"));
    assert!(pm.to_json().contains("\"rule\":\"stall_precursor\""));
}

/// Windows stamped 1..=n so retention is checkable by timestamp.
fn window(i: u64) -> SeriesSample {
    let hub = TelemetryHub::new(1, 1);
    let snap = hub.snapshot();
    SeriesSample::between(&snap, &snap, i, i, 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any capacity and push count, the ring retains exactly the
    /// newest `min(cap, pushed)` windows in order and reports the rest
    /// as dropped.
    #[test]
    fn ring_wrap_retains_newest(cap in 1usize..40, pushed in 0u64..120) {
        let mut ring = SeriesRing::new(cap);
        for i in 0..pushed {
            ring.push(window(i));
        }
        let kept = ring.samples().map(|s| s.seq).collect::<Vec<u64>>();
        let expect_len = (pushed as usize).min(cap);
        prop_assert_eq!(kept.len(), expect_len);
        let first = pushed - expect_len as u64;
        prop_assert_eq!(kept, (first..pushed).collect::<Vec<u64>>());
        prop_assert_eq!(ring.dropped(), pushed.saturating_sub(cap as u64));
    }
}
