//! The paper's headline quantitative claims, checked end-to-end at
//! reduced scale. Absolute numbers are model-exact here (the simulator
//! *is* the measurement device); shapes must match §4.

use corrected_trees::analysis::{lff_scc, m_scc};
use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::TreeKind;
use corrected_trees::exp::campaign::{Campaign, FaultSpec};
use corrected_trees::exp::Variant;
use corrected_trees::logp::LogP;
use corrected_trees::sim::Simulation;

#[test]
fn corrected_trees_halve_latency_vs_acknowledged_trees() {
    // Abstract: "a latency reduction of 50% … in comparison to existing
    // schemes". At P = 2^14 the ack tree costs 2·dissemination while
    // the corrected tree costs dissemination + 8.
    let p = 1 << 14;
    let run = |spec: BroadcastSpec| {
        Simulation::builder(p, LogP::PAPER)
            .build()
            .run(&spec)
            .unwrap()
            .quiescence
            .steps() as f64
    };
    let acked = run(BroadcastSpec::ack_tree(TreeKind::BINOMIAL));
    let corrected = run(BroadcastSpec::corrected_tree_sync(
        TreeKind::BINOMIAL,
        CorrectionKind::Checked,
    ));
    let reduction = 1.0 - corrected / acked;
    assert!(
        reduction > 0.35,
        "corrected trees must cut latency by roughly half: got {:.0}% ({corrected} vs {acked})",
        reduction * 100.0
    );
}

#[test]
fn corrected_trees_send_several_times_fewer_messages_than_gossip() {
    // Abstract: "up to six times fewer messages sent". Compare checked
    // corrected trees against checked gossip at a gossip time long
    // enough to be competitive on coloring.
    let p = 1 << 12;
    let tree = Campaign::new(
        Variant::tree_checked_sync(TreeKind::BINOMIAL),
        p,
        LogP::PAPER,
    )
    .run()
    .unwrap()[0]
        .messages_per_process;
    let gossip = Campaign::new(
        Variant::gossip(12 + 30, CorrectionKind::Checked),
        p,
        LogP::PAPER,
    )
    .with_reps(3)
    .run()
    .unwrap()
    .iter()
    .map(|r| r.messages_per_process)
    .sum::<f64>()
        / 3.0;
    assert!(
        gossip / tree > 2.0,
        "gossip {gossip:.1} msgs/proc vs trees {tree:.1}: ratio too small"
    );
}

#[test]
fn fault_free_correction_costs_exactly_the_closed_forms() {
    // §4.1/§4.2: 8 steps and 5 messages per process at L=2, o=1,
    // independent of tree type and process count.
    let logp = LogP::PAPER;
    for p in [64u32, 512, 4096] {
        for kind in [
            TreeKind::BINOMIAL,
            TreeKind::FOUR_ARY,
            TreeKind::LAME2,
            TreeKind::OPTIMAL,
        ] {
            let tree = kind.build(p, &logp).unwrap();
            let start = tree.dissemination_deadline(&logp);
            let out = Simulation::builder(p, logp)
                .build()
                .run(&BroadcastSpec::corrected_tree_sync(
                    kind,
                    CorrectionKind::Checked,
                ))
                .unwrap();
            assert_eq!(
                out.quiescence.since(start).steps(),
                lff_scc(&logp).steps(),
                "{kind} P={p}"
            );
            assert_eq!(
                out.messages.correction,
                m_scc(&logp) * p as u64,
                "{kind} P={p}"
            );
        }
    }
}

#[test]
fn latency_degradation_under_faults_is_modest_for_trees() {
    // §4.3: tree latency degrades on the order of 10-20% from 0.01% to
    // 4% faults — not catastrophically.
    let p = 1 << 12;
    let mean_q = |rate: f64| {
        let records = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            p,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Rate(rate))
        .with_reps(20)
        .with_seed(9)
        .run_parallel(4)
        .unwrap();
        records.iter().map(|r| r.quiescence as f64).sum::<f64>() / records.len() as f64
    };
    let low = mean_q(0.0001);
    let high = mean_q(0.04);
    let degradation = high / low - 1.0;
    assert!(
        degradation > 0.0,
        "faults must cost something: {low} → {high}"
    );
    assert!(
        degradation < 0.8,
        "degradation should stay moderate: {:.0}%",
        degradation * 100.0
    );
}

#[test]
fn message_count_drops_under_faults() {
    // §4.3 / Figure 9: "a drop in network activity is rather an
    // unintended side effect" — fewer colored processes participate.
    let p = 1 << 12;
    let mean_m = |rate: f64| {
        let records = Campaign::new(
            Variant::tree_checked_sync(TreeKind::FOUR_ARY),
            p,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Rate(rate))
        .with_reps(10)
        .with_seed(4)
        .run_parallel(4)
        .unwrap();
        records.iter().map(|r| r.messages_per_process).sum::<f64>() / records.len() as f64
    };
    assert!(mean_m(0.04) < mean_m(0.0001));
}

#[test]
fn interleaving_bounds_expected_gap_growth() {
    // Figure 1b's core claim: with interleaved numbering the expected
    // max gap grows slowly with the number of faults, while in-order
    // numbering produces subtree-sized gaps.
    use corrected_trees::core::tree::{ring, Ordering};
    use corrected_trees::sim::FaultPlan;
    let p = 1 << 14;
    let logp = LogP::PAPER;
    let mean_gmax = |order: Ordering, faults: u32| -> f64 {
        let tree = TreeKind::Binomial { order }.build(p, &logp).unwrap();
        let mut total = 0u64;
        let reps = 40;
        for seed in 0..reps {
            let plan = FaultPlan::random_count(p, faults, seed).unwrap();
            let colored = ring::color_after_dissemination(&tree, plan.mask());
            total += ring::max_gap(&colored) as u64;
        }
        total as f64 / reps as f64
    };
    for faults in [1u32, 5] {
        let interleaved = mean_gmax(Ordering::Interleaved, faults);
        let in_order = mean_gmax(Ordering::InOrder, faults);
        // A uniformly random failure is a leaf half the time, so the
        // *mean* separation is modest for one fault — but interleaving
        // must stay pinned near 1 while in-order scales with subtree
        // sizes (multiples of it).
        assert!(
            in_order > 2.0 * interleaved,
            "faults={faults}: in-order {in_order} vs interleaved {interleaved}"
        );
        assert!(
            interleaved < 2.5,
            "faults={faults}: interleaved mean g_max must stay near 1, got {interleaved}"
        );
    }
}
